// Package ctc implements the symbol-level energy-modulation
// cross-technology channel the paper discusses as related work (SLEM,
// OfdmFi — section VI): a WiFi transmitter conveys bits to a ZigBee
// device by toggling its energy inside the ZigBee channel between "high"
// (normal constellation points) and "low" (SledZig-pinned points) over
// groups of OFDM symbols; the ZigBee side reads the pattern with nothing
// but RSSI sampling.
//
// Two things distinguish this implementation from the originals and tie
// it to SledZig: the "low" level uses SledZig's exact pinning machinery
// (so the low state is as low as payload encoding can make it — the
// paper's critique of SLEM is precisely that its points "cannot always be
// the designated lowest ones"), and the WiFi payload remains intact, so
// the same frame simultaneously carries its normal WiFi data.
//
// The frame assembly itself lives in internal/core
// (core.AssembleMaskedFrame / core.StripMaskedPayload): ctc supplies the
// OOK symbol mask and the RSSI receiver, and the registry's "ook-ctc"
// backend (internal/codec) promotes the pair onto the Codec contract.
package ctc

import (
	"fmt"

	"sledzig/internal/bits"
	"sledzig/internal/core"
	"sledzig/internal/wifi"
)

// SymbolsPerBit is how many OFDM symbols (4 us each) encode one CTC bit.
// ZigBee RSSI registers integrate over 8 symbol periods (128 us), so 32
// OFDM symbols per bit gives the receiver a full averaging window per
// level.
const SymbolsPerBit = 32

// Encoder embeds an OOK bit pattern into a SledZig-capable WiFi frame.
type Encoder struct {
	Convention wifi.Convention
	Mode       wifi.Mode
	Channel    core.ZigBeeChannel
	Seed       uint8
}

// Frame is a WiFi frame carrying both a WiFi payload and a CTC message.
type Frame struct {
	WiFi *wifi.Frame
	// Mask marks, per OFDM symbol, whether the ZigBee channel was pinned
	// low (true = low energy = CTC bit 0 by convention).
	Mask []bool
	// Bits is the embedded CTC message.
	Bits []bits.Bit
}

// mode resolves the zero-value default.
func (e Encoder) mode() wifi.Mode {
	if e.Mode.Modulation == 0 {
		return wifi.Mode{Modulation: wifi.QAM16, CodeRate: wifi.Rate12}
	}
	return e.Mode
}

// MessageMask expands an OOK message into the per-symbol pinning mask
// (bit 0 = low energy = pinned).
func MessageMask(message []bits.Bit) []bool {
	mask := make([]bool, len(message)*SymbolsPerBit)
	for i, b := range message {
		if b == 0 {
			for s := 0; s < SymbolsPerBit; s++ {
				mask[i*SymbolsPerBit+s] = true
			}
		}
	}
	return mask
}

// Encode builds a frame whose in-channel energy follows message (one
// bit per SymbolsPerBit OFDM symbols; bit 1 = high energy, 0 = low) while
// carrying payload as ordinary WiFi data.
func (e Encoder) Encode(payload []byte, message []bits.Bit) (*Frame, error) {
	if len(message) == 0 {
		return nil, fmt.Errorf("ctc: empty message")
	}
	if err := bits.Validate(message); err != nil {
		return nil, err
	}
	if !e.Channel.Valid() {
		return nil, fmt.Errorf("ctc: invalid channel %d", int(e.Channel))
	}
	mode := e.mode()
	plan, err := core.CachedPlan(e.Convention, mode, e.Channel)
	if err != nil {
		return nil, err
	}

	nSym := len(message) * SymbolsPerBit
	nDBPS := mode.DataBitsPerSymbol()
	// The 12-bit PLCP LENGTH field bounds one frame; longer messages span
	// multiple frames.
	if nSym*nDBPS > 8*wifi.MaxPSDULength+16+6 {
		return nil, fmt.Errorf("ctc: message of %d bits needs %d OFDM symbols, beyond one frame at %v (max %d bits)",
			len(message), nSym, mode, (8*wifi.MaxPSDULength+22)/nDBPS/SymbolsPerBit)
	}

	mask := MessageMask(message)
	frame, _, err := core.AssembleMaskedFrame(plan, mask, payload, e.Seed)
	if err != nil {
		return nil, fmt.Errorf("ctc: %w", err)
	}
	return &Frame{WiFi: frame, Mask: mask, Bits: bits.Clone(message)}, nil
}

// MaxPayload returns the largest payload (octets) a frame carrying a
// message of numBits OOK bits can hold alongside it.
func (e Encoder) MaxPayload(numBits int) (int, error) {
	if numBits <= 0 {
		return 0, fmt.Errorf("ctc: numBits must be positive")
	}
	if !e.Channel.Valid() {
		return 0, fmt.Errorf("ctc: invalid channel %d", int(e.Channel))
	}
	mode := e.mode()
	plan, err := core.CachedPlan(e.Convention, mode, e.Channel)
	if err != nil {
		return 0, err
	}
	// Worst case extra-bit spend: every bit low (all symbols pinned).
	mask := make([]bool, numBits*SymbolsPerBit)
	for i := range mask {
		mask[i] = true
	}
	layout, err := core.MaskedLayout(plan, mask)
	if err != nil {
		return 0, err
	}
	capacity := len(mask)*mode.DataBitsPerSymbol() - len(layout.Positions) - 16 - 6
	return capacity/8 - 2, nil
}
