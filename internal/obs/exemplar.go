package obs

import "sync/atomic"

// Exemplar links one histogram bucket back to the trace that produced a
// representative observation — the OpenMetrics mechanism that lets a p99
// latency bucket name the exact frame trace to look at.
type Exemplar struct {
	TraceID string  `json:"trace_id"`
	Value   float64 `json:"value"`
	UnixNS  int64   `json:"unix_ns,omitempty"`
}

// exemplarSet holds the latest exemplar per bucket. It is allocated lazily
// on the first ObserveExemplar call, so histograms that never see traced
// observations pay nothing.
type exemplarSet struct {
	slots [histBucketCount]atomic.Pointer[Exemplar]
}

// ObserveExemplar records v like Observe and additionally attaches an
// exemplar (the trace ID of the frame that produced v) to the bucket v
// lands in, overwriting the bucket's previous exemplar. An empty traceID
// degrades to a plain Observe. Unlike Observe this allocates (one Exemplar,
// plus the per-bucket set on first use) — call it only on traced frames.
func (h *Histogram) ObserveExemplar(v float64, traceID string, unixNS int64) {
	if h == nil {
		return
	}
	if traceID == "" {
		h.Observe(v)
		return
	}
	i := bucketIndex(v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, floatBits(bitsFloat(old)+v)) {
			break
		}
	}
	set := h.exemplars.Load()
	for set == nil {
		h.exemplars.CompareAndSwap(nil, new(exemplarSet))
		set = h.exemplars.Load()
	}
	set.slots[i].Store(&Exemplar{TraceID: traceID, Value: v, UnixNS: unixNS})
}

// exemplar returns the latest exemplar for bucket i, or nil.
func (h *Histogram) exemplar(i int) *Exemplar {
	if h == nil {
		return nil
	}
	set := h.exemplars.Load()
	if set == nil {
		return nil
	}
	return set.slots[i].Load()
}
