package obs

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Event is one typed pipeline occurrence: a MAC simulator transition, a
// decode failure, an applied channel impairment. Time is in seconds on
// the emitter's clock — simulated time for the MAC simulator, wall time
// since process start elsewhere; Source disambiguates.
type Event struct {
	Time   float64 `json:"t"`
	Source string  `json:"source"`           // emitting subsystem: "mac", "wifi.rx", "core.decode", "channel", ...
	Kind   string  `json:"kind"`             // event taxonomy entry, e.g. "decode_fail.signal"
	Node   int     `json:"node"`             // ZigBee node index; -1 when not node-scoped
	Detail string  `json:"detail,omitempty"` // free-form context (error text, parameters)
}

// String renders an event compactly.
func (ev Event) String() string {
	s := fmt.Sprintf("%.6f %s/%s", ev.Time, ev.Source, ev.Kind)
	if ev.Node >= 0 {
		s += fmt.Sprintf(" node=%d", ev.Node)
	}
	if ev.Detail != "" {
		s += " " + ev.Detail
	}
	return s
}

// Sink consumes events. Implementations must be fast or buffer
// internally; Publish calls them inline.
type Sink interface {
	Emit(Event)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Event)

// Emit calls f.
func (f SinkFunc) Emit(ev Event) { f(ev) }

// Bus fans events out to subscribed sinks. The zero value is ready; a
// nil *Bus drops everything. Publish with no subscribers is one atomic
// load.
type Bus struct {
	mu     sync.RWMutex
	subs   []*subscription
	active atomic.Bool
}

// subscription wraps a sink so unsubscribe can find it by pointer
// identity (Sink values such as SinkFunc are not comparable).
type subscription struct {
	sink Sink
}

// Active reports whether any sink is subscribed — emitters check it
// before building expensive Detail strings.
func (b *Bus) Active() bool {
	return b != nil && b.active.Load()
}

// Subscribe registers a sink and returns its unsubscribe function.
func (b *Bus) Subscribe(s Sink) (unsubscribe func()) {
	if b == nil || s == nil {
		return func() {}
	}
	sub := &subscription{sink: s}
	b.mu.Lock()
	b.subs = append(b.subs, sub)
	b.active.Store(true)
	b.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			b.mu.Lock()
			for i, have := range b.subs {
				if have == sub {
					b.subs = append(b.subs[:i], b.subs[i+1:]...)
					break
				}
			}
			b.active.Store(len(b.subs) > 0)
			b.mu.Unlock()
		})
	}
}

// Publish delivers ev to every subscriber, inline.
func (b *Bus) Publish(ev Event) {
	if !b.Active() {
		return
	}
	b.mu.RLock()
	for _, sub := range b.subs {
		sub.sink.Emit(ev)
	}
	b.mu.RUnlock()
}
