package obs

import (
	"math"
	"testing"
)

func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    float64
		le   float64 // expected exclusive upper bound of the bucket v lands in
		name string
	}{
		{0, 1e-9, "zero underflows"},
		{-1, 1e-9, "negative underflows"},
		{5e-10, 1e-9, "below 1ns underflows"},
		{1e-9, 2e-9, "exact minimum"},
		{1.5e-9, 2e-9, "first bucket"},
		{9.99e-9, 1e-8, "top of first decade"},
		{1e-6, 2e-6, "decade boundary lands in the upper decade"},
		{2e-6, 3e-6, "exact sub-bucket boundary lands upward"},
		{2.9e-6, 3e-6, "inside sub-bucket"},
		{1, 2, "one second"},
		{999, 1000, "top decade"},
		{5000, 6000, "top decade spans to 10^4"},
		{20000, math.Inf(1), "overflow"},
		{math.Inf(1), math.Inf(1), "infinity overflows"},
	}
	for _, tc := range cases {
		idx := bucketIndex(tc.v)
		if idx < 0 || idx >= histBucketCount {
			t.Fatalf("%s: index %d out of range for %g", tc.name, idx, tc.v)
		}
		got := BucketUpperBound(idx)
		if got != tc.le && !(math.IsInf(got, 1) && math.IsInf(tc.le, 1)) {
			t.Errorf("%s: value %g -> bucket le %g, want %g", tc.name, tc.v, got, tc.le)
		}
	}
}

// Every representable value must land in a bucket whose [lower, upper)
// range contains it — sweep decades with awkward mantissas.
func TestBucketIndexConsistent(t *testing.T) {
	for e := histMinExp; e <= histMaxExp; e++ {
		for _, m := range []float64{1, 1.0000001, 2.5, 4.999999, 5, 7.77, 9, 9.999999} {
			v := m * math.Pow(10, float64(e))
			idx := bucketIndex(v)
			upper := BucketUpperBound(idx)
			var lower float64
			if idx > 0 {
				lower = BucketUpperBound(idx - 1)
			}
			if v < lower || v >= upper {
				t.Fatalf("value %g in bucket %d [%g, %g)", v, idx, lower, upper)
			}
		}
	}
}

func TestHistogramNaN(t *testing.T) {
	if idx := bucketIndex(math.NaN()); idx != 0 {
		t.Fatalf("NaN bucket %d, want underflow", idx)
	}
}

func TestHistogramSnapshotStats(t *testing.T) {
	var h Histogram
	for _, v := range []float64{1e-6, 2e-6, 3e-6, 4e-6} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("count %d", s.Count)
	}
	if math.Abs(s.Sum-1e-5) > 1e-12 {
		t.Fatalf("sum %g", s.Sum)
	}
	if math.Abs(s.Mean()-2.5e-6) > 1e-12 {
		t.Fatalf("mean %g", s.Mean())
	}
	// Median of {1,2,3,4}µs: the second value's bucket upper bound.
	if q := s.Quantile(0.5); q < 2e-6 || q > 4e-6 {
		t.Fatalf("p50 %g", q)
	}
	if q := s.Quantile(1); q < 4e-6 || q > 6e-6 {
		t.Fatalf("p100 %g", q)
	}
}

func TestNilHistogram(t *testing.T) {
	var h *Histogram
	h.Observe(1) // must not panic
	h.ObserveDuration(0)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram should report zeros")
	}
	if s := h.Snapshot(); s.Count != 0 || len(s.Buckets) != 0 {
		t.Fatal("nil histogram snapshot should be empty")
	}
}
