package obs

import "time"

// Scope is a named slice of a registry ("core.encode", "wifi.rx") from
// which pipeline stages hang. A nil *Scope (from a nil registry) hands
// out nil stages.
type Scope struct {
	r      *Registry
	prefix string
}

// Scope returns a sub-namespace of the registry.
func (r *Registry) Scope(prefix string) *Scope {
	if r == nil {
		return nil
	}
	return &Scope{r: r, prefix: prefix}
}

// Counter returns a counter under the scope's prefix.
func (s *Scope) Counter(name string) *Counter {
	if s == nil {
		return nil
	}
	return s.r.Counter(s.prefix + "." + name)
}

// Gauge returns a gauge under the scope's prefix.
func (s *Scope) Gauge(name string) *Gauge {
	if s == nil {
		return nil
	}
	return s.r.Gauge(s.prefix + "." + name)
}

// Stage resolves the metric bundle of one pipeline stage:
//
//	<scope>.<name>.seconds  histogram of stage duration
//	<scope>.<name>.calls    invocations
//	<scope>.<name>.bytes    payload octets through the stage
//	<scope>.<name>.errors   failed invocations
//
// Resolve once (package-level via Lazy, or per struct); the per-call cost
// is then a nil check, two clock reads and a few atomics.
func (s *Scope) Stage(name string) *Stage {
	if s == nil {
		return nil
	}
	full := s.prefix + "." + name
	return &Stage{
		seconds: s.r.Histogram(full + ".seconds"),
		calls:   s.r.Counter(full + ".calls"),
		bytes:   s.r.Counter(full + ".bytes"),
		errors:  s.r.Counter(full + ".errors"),
	}
}

// Stage times one pipeline stage. A nil *Stage is a no-op and never
// touches the clock, so disabled instrumentation costs a nil check.
type Stage struct {
	seconds *Histogram
	calls   *Counter
	bytes   *Counter
	errors  *Counter
}

// Start begins timing; pass the result to Done or Fail. On a nil stage it
// returns the zero time without reading the clock.
func (st *Stage) Start() time.Time {
	if st == nil {
		return time.Time{}
	}
	return time.Now()
}

// Done records a successful pass: duration since start plus n payload
// bytes (pass 0 when byte throughput is meaningless for the stage).
func (st *Stage) Done(start time.Time, n int) {
	if st == nil {
		return
	}
	st.seconds.ObserveDuration(time.Since(start))
	st.calls.Inc()
	if n > 0 {
		st.bytes.Add(uint64(n))
	}
}

// Fail records a failed pass; the duration still counts.
func (st *Stage) Fail(start time.Time) {
	if st == nil {
		return
	}
	st.seconds.ObserveDuration(time.Since(start))
	st.calls.Inc()
	st.errors.Inc()
}

// Calls returns the stage's invocation count (0 on nil).
func (st *Stage) Calls() uint64 {
	if st == nil {
		return 0
	}
	return st.calls.Value()
}

// Seconds returns the stage's duration histogram (nil on nil).
func (st *Stage) Seconds() *Histogram {
	if st == nil {
		return nil
	}
	return st.seconds
}
