package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestWriteOpenMetricsFormat checks the OpenMetrics divergences from the
// classic exposition: the _total counter suffix, bucket exemplars linking
// back to trace IDs, and the mandatory # EOF terminator.
func TestWriteOpenMetricsFormat(t *testing.T) {
	r := New()
	r.Counter("decode.frames").Add(3)
	r.Gauge("engine.queue_depth").Set(2)
	h := r.Histogram("engine.frame.decode.latency_seconds")
	h.ObserveExemplar(0.5, "00000000deadbeef", 1_700_000_000_000_000_000)
	h.Observe(0.25)

	var b strings.Builder
	if err := r.WriteOpenMetrics(&b); err != nil {
		t.Fatalf("WriteOpenMetrics: %v", err)
	}
	out := b.String()
	for _, want := range []string{
		"sledzig_decode_frames_total 3\n",
		"sledzig_engine_queue_depth 2\n",
		`# {trace_id="00000000deadbeef"} 0.5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("OpenMetrics output missing %q:\n%s", want, out)
		}
	}
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Errorf("OpenMetrics output does not end with # EOF:\n%s", out)
	}
	// The untraced observation's bucket must carry no exemplar suffix.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, `le="0.25`) && strings.Contains(line, "trace_id") {
			t.Errorf("untraced bucket carries an exemplar: %s", line)
		}
	}
}

// TestWriteOpenMetricsNilRegistry: a nil registry still writes a valid
// (empty) exposition.
func TestWriteOpenMetricsNilRegistry(t *testing.T) {
	var r *Registry
	var b strings.Builder
	if err := r.WriteOpenMetrics(&b); err != nil {
		t.Fatalf("WriteOpenMetrics on nil: %v", err)
	}
	if b.String() != "# EOF\n" {
		t.Fatalf("nil registry exposition = %q, want \"# EOF\\n\"", b.String())
	}
}

// TestObserveExemplarEmptyTraceIDDegrades: without a trace ID the
// observation counts but attaches nothing (and allocates no exemplar set).
func TestObserveExemplarEmptyTraceIDDegrades(t *testing.T) {
	r := New()
	h := r.Histogram("h.seconds")
	h.ObserveExemplar(0.5, "", 0)
	s := h.Snapshot()
	if s.Count != 1 {
		t.Fatalf("count %d, want 1", s.Count)
	}
	for _, b := range s.Buckets {
		if b.Exemplar != nil {
			t.Fatalf("exemplar attached without a trace ID: %+v", b.Exemplar)
		}
	}
}

// TestHandlerContentNegotiation: the /metrics handler upgrades to
// OpenMetrics only when the Accept header asks for it.
func TestHandlerContentNegotiation(t *testing.T) {
	r := New()
	r.Counter("decode.frames").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	get := func(accept string) (string, string) {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, srv.URL, nil)
		if err != nil {
			t.Fatal(err)
		}
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b strings.Builder
		if _, err := io.Copy(&b, resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp.Header.Get("Content-Type"), b.String()
	}

	ct, body := get("")
	if !strings.Contains(ct, "version=0.0.4") || strings.Contains(body, "_total") {
		t.Errorf("default exposition: content type %q, body:\n%s", ct, body)
	}
	ct, body = get("application/openmetrics-text; version=1.0.0")
	if !strings.Contains(ct, "openmetrics-text") || !strings.Contains(body, "sledzig_decode_frames_total 1") || !strings.HasSuffix(body, "# EOF\n") {
		t.Errorf("openmetrics exposition: content type %q, body:\n%s", ct, body)
	}
}

// TestRegisterDebugHandlerFirstWins: duplicate registrations keep the
// first handler, NewMux mounts it, and the banner advertises the pattern.
func TestRegisterDebugHandlerFirstWins(t *testing.T) {
	RegisterDebugHandler("/debug/testfirstwins", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("first"))
	}))
	RegisterDebugHandler("/debug/testfirstwins", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("second"))
	}))
	RegisterDebugHandler("", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {})) // ignored
	RegisterDebugHandler("/debug/testnil", nil)                                                 // ignored

	r := New()
	srv := httptest.NewServer(r.NewMux())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/testfirstwins")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "first" {
		t.Fatalf("duplicate registration replaced the first handler: %q", body)
	}

	resp, err = http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	banner, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(banner), "/debug/testfirstwins") {
		t.Fatalf("banner does not advertise the contributed endpoint: %q", banner)
	}
}

// TestConcurrentExposition hammers the registry with writers while readers
// scrape every exposition format through the diagnostics mux — the -race
// proof that snapshotting, exemplars and expvar publication are safe under
// live traffic.
func TestConcurrentExposition(t *testing.T) {
	r := New()
	srv := httptest.NewServer(r.NewMux())
	defer srv.Close()

	stop := make(chan struct{})
	var writers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			c := r.Counter("decode.frames")
			g := r.Gauge("engine.queue_depth")
			h := r.Histogram("engine.frame.decode.latency_seconds")
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				g.Set(float64(i % 8))
				if i%3 == 0 {
					h.ObserveExemplar(float64(i%100)/1000, "00000000deadbeef", int64(i))
				} else {
					h.Observe(float64(i%100) / 1000)
				}
			}
		}(w)
	}

	scrape := func(path, accept string) {
		req, err := http.NewRequest(http.MethodGet, srv.URL+path, nil)
		if err != nil {
			t.Error(err)
			return
		}
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Error(err)
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d", path, resp.StatusCode)
			return
		}
		if path == "/debug/vars" {
			var v map[string]json.RawMessage
			if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
				t.Errorf("expvar output is not JSON: %v", err)
			}
			return
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			t.Errorf("%s: %v", path, err)
		}
	}

	var readers sync.WaitGroup
	for g := 0; g < 3; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 8; i++ {
				scrape("/metrics", "")
				scrape("/metrics", "application/openmetrics-text")
				scrape("/debug/vars", "")
			}
		}()
	}
	readers.Wait()
	close(stop)
	writers.Wait()
}
