package obs

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func TestBusSubscribePublish(t *testing.T) {
	var b Bus
	if b.Active() {
		t.Fatal("fresh bus active")
	}
	b.Publish(Event{Kind: "dropped"}) // no subscribers: must be a cheap no-op

	var got []Event
	unsub := b.Subscribe(SinkFunc(func(ev Event) { got = append(got, ev) }))
	if !b.Active() {
		t.Fatal("bus with subscriber not active")
	}
	b.Publish(Event{Source: "mac", Kind: "zb_start", Node: 2, Time: 1.5})
	if len(got) != 1 || got[0].Kind != "zb_start" || got[0].Node != 2 {
		t.Fatalf("got %+v", got)
	}

	unsub()
	unsub() // double-unsubscribe must be safe
	if b.Active() {
		t.Fatal("bus active after unsubscribe")
	}
	b.Publish(Event{Kind: "after"})
	if len(got) != 1 {
		t.Fatalf("event delivered after unsubscribe: %+v", got)
	}
}

func TestBusMultipleSinks(t *testing.T) {
	var b Bus
	var a1, a2 int
	u1 := b.Subscribe(SinkFunc(func(Event) { a1++ }))
	defer b.Subscribe(SinkFunc(func(Event) { a2++ }))()
	b.Publish(Event{})
	u1()
	b.Publish(Event{})
	if a1 != 1 || a2 != 2 {
		t.Fatalf("a1=%d a2=%d", a1, a2)
	}
}

func TestRingSinkWraparound(t *testing.T) {
	r := NewRingSink(3)
	for i := 0; i < 5; i++ {
		r.Emit(Event{Node: i})
	}
	if r.Total() != 5 {
		t.Fatalf("total %d", r.Total())
	}
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d", len(evs))
	}
	for i, ev := range evs {
		if ev.Node != i+2 { // oldest first: 2, 3, 4
			t.Fatalf("events %+v", evs)
		}
	}
}

func TestRingSinkMinimumCapacity(t *testing.T) {
	r := NewRingSink(0)
	r.Emit(Event{Node: 1})
	r.Emit(Event{Node: 2})
	if evs := r.Events(); len(evs) != 1 || evs[0].Node != 2 {
		t.Fatalf("events %+v", evs)
	}
}

func TestCSVSinkOutput(t *testing.T) {
	var b strings.Builder
	s := NewCSVSink(&b)
	s.Emit(Event{Time: 1.5, Source: "mac", Kind: "zb_start", Node: 0, Detail: "x"})
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines %q", lines)
	}
	if lines[0] != "t,source,kind,node,detail" {
		t.Fatalf("header %q", lines[0])
	}
	if lines[1] != "1.500000000,mac,zb_start,0,x" {
		t.Fatalf("row %q", lines[1])
	}
}

type failWriter struct{ err error }

func (f failWriter) Write([]byte) (int, error) { return 0, f.err }

func TestCSVSinkStickyError(t *testing.T) {
	wantErr := errors.New("disk full")
	s := NewCSVSink(failWriter{wantErr})
	s.Emit(Event{Kind: "a"})
	if err := s.Flush(); !errors.Is(err, wantErr) {
		t.Fatalf("Flush error %v, want %v", err, wantErr)
	}
	s.Emit(Event{Kind: "b"}) // dropped, no panic
	if err := s.Flush(); !errors.Is(err, wantErr) {
		t.Fatalf("error not sticky: %v", err)
	}
}

func TestJSONLSink(t *testing.T) {
	var b strings.Builder
	s := NewJSONLSink(&b)
	s.Emit(Event{Time: 0.25, Source: "wifi.rx", Kind: "decode_fail.signal", Node: -1, Detail: "parity"})
	s.Emit(Event{Time: 0.5, Source: "channel", Kind: "impairment.cfo", Node: -1})
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines %d", len(lines))
	}
	var ev Event
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Kind != "decode_fail.signal" || ev.Detail != "parity" || ev.Time != 0.25 {
		t.Fatalf("round trip %+v", ev)
	}
	// Detail omitted when empty.
	if strings.Contains(lines[1], "detail") {
		t.Fatalf("empty detail not omitted: %q", lines[1])
	}
}

func TestJSONLSinkStickyError(t *testing.T) {
	wantErr := errors.New("pipe closed")
	s := NewJSONLSink(failWriter{wantErr})
	s.Emit(Event{})
	if err := s.Flush(); !errors.Is(err, wantErr) {
		t.Fatalf("Flush error %v", err)
	}
}

func TestEventString(t *testing.T) {
	ev := Event{Time: 1.25, Source: "mac", Kind: "zb_start", Node: 3, Detail: "retry"}
	s := ev.String()
	for _, part := range []string{"1.250000", "mac/zb_start", "node=3", "retry"} {
		if !strings.Contains(s, part) {
			t.Fatalf("String() = %q missing %q", s, part)
		}
	}
	if s := (Event{Node: -1}).String(); strings.Contains(s, "node=") {
		t.Fatalf("node=-1 should be omitted: %q", s)
	}
}
