package obs

import (
	"encoding/csv"
	"encoding/json"
	"io"
	"strconv"
	"sync"
)

// RingSink keeps the last N events in memory — the "flight recorder" a
// long-running process exposes for post-mortems without unbounded growth.
type RingSink struct {
	mu    sync.Mutex
	buf   []Event
	next  int
	total uint64
}

// NewRingSink creates a ring holding up to capacity events.
func NewRingSink(capacity int) *RingSink {
	if capacity < 1 {
		capacity = 1
	}
	return &RingSink{buf: make([]Event, 0, capacity)}
}

// Emit appends the event, evicting the oldest when full.
func (r *RingSink) Emit(ev Event) {
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, ev)
	} else {
		r.buf[r.next] = ev
		r.next = (r.next + 1) % cap(r.buf)
	}
	r.total++
	r.mu.Unlock()
}

// Events returns the retained events, oldest first.
func (r *RingSink) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Total returns how many events were ever emitted (≥ len(Events())).
func (r *RingSink) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// CSVSink streams events to w as "t,source,kind,node,detail" rows. The
// first write error sticks and is returned by Flush; later events are
// dropped once the writer failed.
type CSVSink struct {
	mu  sync.Mutex
	cw  *csv.Writer
	err error
}

// NewCSVSink writes the header row and returns the sink.
func NewCSVSink(w io.Writer) *CSVSink {
	s := &CSVSink{cw: csv.NewWriter(w)}
	s.err = s.cw.Write([]string{"t", "source", "kind", "node", "detail"})
	return s
}

// Emit writes one row.
func (s *CSVSink) Emit(ev Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	s.err = s.cw.Write([]string{
		strconv.FormatFloat(ev.Time, 'f', 9, 64),
		ev.Source,
		ev.Kind,
		strconv.Itoa(ev.Node),
		ev.Detail,
	})
}

// Flush drains buffers and returns the first error hit anywhere on the
// write path.
func (s *CSVSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cw.Flush()
	if s.err != nil {
		return s.err
	}
	s.err = s.cw.Error()
	return s.err
}

// JSONLSink streams events to w as one JSON object per line. Like
// CSVSink, the first error sticks.
type JSONLSink struct {
	mu  sync.Mutex
	enc *json.Encoder
	w   io.Writer
	err error
}

// NewJSONLSink wraps w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{enc: json.NewEncoder(w), w: w}
}

// Emit writes one line.
func (s *JSONLSink) Emit(ev Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	s.err = s.enc.Encode(ev)
}

// Flush returns the first encode/write error (JSON lines are unbuffered,
// so there is nothing left to drain).
func (s *JSONLSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}
