package obs

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestWritePrometheusGolden(t *testing.T) {
	r := New()
	r.Counter("frames.total").Add(3)
	r.Gauge("snr.db").Set(-2.5)
	h := r.Histogram("stage.seconds")
	h.Observe(1.5e-6) // bucket le 2e-6
	h.Observe(2.5e-3) // bucket le 3e-3

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE sledzig_frames_total counter
sledzig_frames_total 3
# TYPE sledzig_snr_db gauge
sledzig_snr_db -2.5
# TYPE sledzig_stage_seconds histogram
sledzig_stage_seconds_bucket{le="0.000002"} 1
sledzig_stage_seconds_bucket{le="0.003"} 2
sledzig_stage_seconds_bucket{le="+Inf"} 2
sledzig_stage_seconds_sum 0.0025015
sledzig_stage_seconds_count 2
`
	if got := b.String(); got != want {
		t.Errorf("prometheus output mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"wifi.tx.map.seconds": "sledzig_wifi_tx_map_seconds",
		"a-b c/d":             "sledzig_a_b_c_d",
		"UPPER09_:x":          "sledzig_UPPER09_:x",
	}
	for in, want := range cases {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestNilRegistryWritePrometheus(t *testing.T) {
	var r *Registry
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil || b.Len() != 0 {
		t.Fatalf("nil registry: err=%v output=%q", err, b.String())
	}
}

func TestDiagnosticsMux(t *testing.T) {
	r := New()
	r.Counter("mux.hits").Inc()
	mux := r.NewMux()

	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		return rec
	}

	rec := get("/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "sledzig_mux_hits 1") {
		t.Fatalf("metrics body missing counter:\n%s", rec.Body.String())
	}

	if rec := get("/debug/vars"); rec.Code != http.StatusOK ||
		!strings.Contains(rec.Body.String(), "sledzig") {
		t.Fatalf("/debug/vars status %d body %q", rec.Code, rec.Body.String())
	}
	if rec := get("/debug/pprof/"); rec.Code != http.StatusOK {
		t.Fatalf("/debug/pprof/ status %d", rec.Code)
	}
	if rec := get("/debug/pprof/cmdline"); rec.Code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline status %d", rec.Code)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	r := New()
	r.Counter("c").Add(7)
	r.Gauge("g").Set(1.25)
	r.Histogram("h.seconds").Observe(0.5)

	s := r.Snapshot()
	if s.Counters["c"] != 7 || s.Gauges["g"] != 1.25 {
		t.Fatalf("snapshot %+v", s)
	}
	hs := s.Histograms["h.seconds"]
	if hs.Count != 1 || hs.Sum != 0.5 || len(hs.Buckets) != 1 {
		t.Fatalf("histogram snapshot %+v", hs)
	}
}
