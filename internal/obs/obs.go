// Package obs is the observability substrate for the whole pipeline: a
// lock-cheap metrics registry (atomic counters, gauges and log-linear
// latency histograms), a Scope/Stage API that times pipeline stages, a
// typed event bus with pluggable sinks, and exposition as Snapshot /
// expvar / Prometheus text format / net-http-pprof.
//
// Every handle type is nil-safe: a nil *Registry hands out nil *Counter,
// *Gauge, *Histogram and *Stage values whose methods are no-ops, so
// library code instruments unconditionally and users who never opt in pay
// only a nil check per call. Opt in by creating a Registry and either
// threading it explicitly or installing it process-wide with SetDefault.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; a nil *Counter ignores increments.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically updated float64 level. A nil *Gauge ignores
// updates.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(floatBits(v))
	}
}

// Add increments the gauge by delta (CAS loop; gauges are not hot-path).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, floatBits(bitsFloat(old)+delta)) {
			return
		}
	}
}

// Value returns the current level (0 for a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return bitsFloat(g.bits.Load())
}

// Registry holds named metrics. Registration takes a mutex; updates on
// the handles are pure atomics, so the intended pattern is to resolve
// handles once (see Scope and Lazy) and increment freely. Metric names
// are dotted lower-case paths ("wifi.tx.map.seconds"); the Prometheus
// writer sanitizes them for exposition.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram

	bus Bus
}

// New creates an empty registry.
func New() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = new(Counter)
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = new(Gauge)
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.histograms[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.histograms[name]; h == nil {
		h = new(Histogram)
		r.histograms[name] = h
	}
	return h
}

// Bus returns the registry's event bus (nil for a nil registry).
func (r *Registry) Bus() *Bus {
	if r == nil {
		return nil
	}
	return &r.bus
}

// Emit publishes an event on the registry's bus; a no-op when the
// registry is nil or nothing subscribed.
func (r *Registry) Emit(ev Event) {
	if r != nil {
		r.bus.Publish(ev)
	}
}

// names returns the sorted metric names of each kind — exposition wants
// deterministic order.
func (r *Registry) names() (counters, gauges, histograms []string) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for n := range r.counters {
		counters = append(counters, n)
	}
	for n := range r.gauges {
		gauges = append(gauges, n)
	}
	for n := range r.histograms {
		histograms = append(histograms, n)
	}
	sort.Strings(counters)
	sort.Strings(gauges)
	sort.Strings(histograms)
	return
}

// defaultRegistry is the process-wide opt-in registry; nil until
// SetDefault installs one.
var defaultRegistry atomic.Pointer[Registry]

// SetDefault installs r as the process-wide registry picked up by all
// instrumented packages. Passing nil turns instrumentation back off.
func SetDefault(r *Registry) {
	defaultRegistry.Store(r)
}

// Default returns the process-wide registry, or nil when none was
// installed. All registry methods tolerate the nil.
func Default() *Registry {
	return defaultRegistry.Load()
}

// Lazy caches a value derived from the current default registry,
// rebuilding it only when SetDefault changed the registry. Packages use
// it to resolve their metric handles once instead of taking registry
// locks on the hot path:
//
//	var m obs.Lazy[myMetrics]
//	mm := m.Get(buildMyMetrics) // one atomic load when cached
type Lazy[T any] struct {
	p atomic.Pointer[lazyEntry[T]]
}

type lazyEntry[T any] struct {
	reg *Registry
	val T
}

// Get returns the cached value when the default registry is unchanged,
// otherwise rebuilds via build (which receives the possibly-nil current
// registry).
func (l *Lazy[T]) Get(build func(*Registry) T) T {
	r := Default()
	if e := l.p.Load(); e != nil && e.reg == r {
		return e.val
	}
	e := &lazyEntry[T]{reg: r, val: build(r)}
	l.p.Store(e)
	return e.val
}

func floatBits(v float64) uint64 { return math.Float64bits(v) }
func bitsFloat(b uint64) float64 { return math.Float64frombits(b) }
