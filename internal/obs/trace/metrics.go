package trace

import "sledzig/internal/obs"

// traceMetrics is the tracer's own counter bundle, resolved lazily against
// the current default obs registry (all handles are nil-safe no-ops when
// metrics are off).
type traceMetrics struct {
	started      *obs.Counter
	finished     *obs.Counter
	retainedHead *obs.Counter
	retainedErr  *obs.Counter
	retainedSlow *obs.Counter
	faultDumps   *obs.Counter
	exportErrors *obs.Counter
}

var lazyMetrics obs.Lazy[*traceMetrics]

func metrics() *traceMetrics {
	return lazyMetrics.Get(func(r *obs.Registry) *traceMetrics {
		return &traceMetrics{
			started:      r.Counter("trace.frames.started"),
			finished:     r.Counter("trace.frames.finished"),
			retainedHead: r.Counter("trace.retained.head"),
			retainedErr:  r.Counter("trace.retained.error"),
			retainedSlow: r.Counter("trace.retained.slow"),
			faultDumps:   r.Counter("trace.flight.dumps"),
			exportErrors: r.Counter("trace.export.errors"),
		}
	})
}
