package trace

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestNilTracerAndFrameAreNoOps(t *testing.T) {
	var tr *Tracer
	f := tr.Start("encode")
	if f != nil {
		t.Fatalf("nil tracer Start = %v, want nil frame", f)
	}
	// Every method on the nil frame must be callable.
	f.Enqueued()
	f.Dequeued(3)
	m := f.Begin("rx.viterbi")
	m.End()
	f.Finish(errors.New("boom"))
	if got := f.TraceID(); got != 0 {
		t.Fatalf("nil frame TraceID = %d, want 0", got)
	}
	if tr.Flight() != nil || tr.Retained() != nil {
		t.Fatal("nil tracer rings should be empty")
	}
	tr.AddExporter(NewJSONLExporter(nil)) // must not panic
	if err := tr.WriteDump(nil, "x"); !errors.Is(err, ErrNoTracer) {
		t.Fatalf("nil WriteDump err = %v, want ErrNoTracer", err)
	}
}

func TestFrameLifecycleAndHeadSampling(t *testing.T) {
	tr := New(Config{SampleEvery: 1})
	f := tr.Start("decode")
	if f == nil {
		t.Fatal("Start returned nil on a live tracer")
	}
	f.Enqueued()
	f.Dequeued(2)
	m := f.Begin("rx.signal")
	m.End()
	f.Finish(nil)

	flight := tr.Flight()
	if len(flight) != 1 {
		t.Fatalf("flight holds %d frames, want 1", len(flight))
	}
	retained := tr.Retained()
	if len(retained) != 1 {
		t.Fatalf("retained holds %d frames, want 1 (SampleEvery=1)", len(retained))
	}
	s := retained[0]
	if s.Kind != "decode" {
		t.Errorf("Kind = %q, want decode", s.Kind)
	}
	if s.Worker != 2 {
		t.Errorf("Worker = %d, want 2", s.Worker)
	}
	if s.Retained != "head" {
		t.Errorf("Retained = %q, want head", s.Retained)
	}
	if s.Error != "" {
		t.Errorf("Error = %q, want empty", s.Error)
	}
	if s.QueueWaitNS < 0 || s.ServiceNS <= 0 || s.TotalNS < s.ServiceNS {
		t.Errorf("timing inconsistent: queue=%d service=%d total=%d", s.QueueWaitNS, s.ServiceNS, s.TotalNS)
	}
	if len(s.Spans) != 1 || s.Spans[0].Name != "rx.signal" || s.Spans[0].Count != 1 {
		t.Errorf("spans = %+v, want one rx.signal occurrence", s.Spans)
	}
	if len(s.TraceID) != 16 {
		t.Errorf("TraceID = %q, want 16 hex chars", s.TraceID)
	}
}

func TestTailCaptureOnErrorAndSlow(t *testing.T) {
	tr := New(Config{LatencyThreshold: time.Nanosecond})
	f := tr.Start("encode")
	f.Finish(errors.New("viterbi exploded"))
	f2 := tr.Start("encode")
	f2.Finish(nil) // any nonzero latency exceeds 1ns

	retained := tr.Retained()
	if len(retained) != 2 {
		t.Fatalf("retained %d frames, want 2", len(retained))
	}
	if retained[0].Retained != "error" || retained[0].Error != "viterbi exploded" {
		t.Errorf("first frame retained=%q error=%q, want error retention", retained[0].Retained, retained[0].Error)
	}
	if retained[1].Retained != "slow" {
		t.Errorf("second frame retained=%q, want slow", retained[1].Retained)
	}
}

func TestUnremarkableFrameStaysFlightOnly(t *testing.T) {
	tr := New(Config{SampleEvery: 1000})
	f := tr.Start("encode") // id 1, not a multiple of 1000
	f.Finish(nil)
	if n := len(tr.Flight()); n != 1 {
		t.Fatalf("flight holds %d, want 1", n)
	}
	if n := len(tr.Retained()); n != 0 {
		t.Fatalf("retained holds %d, want 0", n)
	}
}

func TestSpanAccumulation(t *testing.T) {
	tr := New(Config{SampleEvery: 1})
	f := tr.Start("decode")
	for i := 0; i < 3; i++ {
		m := f.Begin("rx.equalize")
		m.End()
	}
	f.Finish(nil)
	s := tr.Retained()[0]
	if len(s.Spans) != 1 {
		t.Fatalf("spans = %d, want 1 accumulated", len(s.Spans))
	}
	if s.Spans[0].Count != 3 {
		t.Errorf("Count = %d, want 3", s.Spans[0].Count)
	}
	if s.Spans[0].DurNS < 0 || s.Spans[0].EndNS < s.Spans[0].StartNS {
		t.Errorf("span timing inconsistent: %+v", s.Spans[0])
	}
}

func TestLateWritesAfterFinishAreDropped(t *testing.T) {
	tr := New(Config{SampleEvery: 1})
	f := tr.Start("decode")
	m := f.Begin("rx.viterbi")
	f.Finish(nil)
	m.End() // abandoned-goroutine write: dropped
	f.Begin("rx.signal").End()
	f.Finish(errors.New("late")) // idempotent: first Finish won
	if n := len(tr.Flight()); n != 1 {
		t.Fatalf("flight holds %d, want 1 (Finish must be idempotent)", n)
	}
	s := tr.Retained()[0]
	if s.Error != "" {
		t.Errorf("late Finish overwrote outcome: %q", s.Error)
	}
	if len(s.Spans) != 1 || s.Spans[0].Count != 0 {
		t.Errorf("late span writes leaked into snapshot: %+v", s.Spans)
	}
}

func TestSpanCapDropsOverflow(t *testing.T) {
	tr := New(Config{SampleEvery: 1})
	f := tr.Start("decode")
	for i := 0; i < maxFrameSpans+8; i++ {
		m := f.Begin(fmt.Sprintf("stage.%02d", i)) //nolint — test-only dynamic name
		m.End()
	}
	f.Finish(nil)
	if n := len(tr.Retained()[0].Spans); n != maxFrameSpans {
		t.Fatalf("snapshot has %d spans, want cap %d", n, maxFrameSpans)
	}
}

func TestFlightRingWrapsAndCounts(t *testing.T) {
	tr := New(Config{FlightSize: 4, RetainedSize: 2, SampleEvery: 1})
	for i := 0; i < 10; i++ {
		tr.Start("encode").Finish(nil)
	}
	if got := tr.flight.total(); got != 10 {
		t.Errorf("flight total = %d, want 10", got)
	}
	if n := len(tr.Flight()); n != 4 {
		t.Errorf("flight holds %d, want 4", n)
	}
	if n := len(tr.Retained()); n != 2 {
		t.Errorf("retained holds %d, want 2", n)
	}
	// Oldest-first ordering by start time.
	fl := tr.Flight()
	for i := 1; i < len(fl); i++ {
		if fl[i].StartUnixNS < fl[i-1].StartUnixNS {
			t.Fatalf("flight out of order at %d", i)
		}
	}
}

func TestConcurrentFramesAndReaders(t *testing.T) {
	tr := New(Config{FlightSize: 8, SampleEvery: 2, LatencyThreshold: time.Millisecond})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				f := tr.Start("decode")
				f.Enqueued()
				f.Dequeued(g)
				m := f.Begin("rx.demap")
				m.End()
				var err error
				if i%7 == 0 {
					err = errors.New("synthetic")
				}
				f.Finish(err)
			}
		}(g)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Flight()
				tr.Retained()
			}
		}()
	}
	wg.Wait()
	if got := tr.flight.total(); got != 400 {
		t.Fatalf("flight total = %d, want 400", got)
	}
}

func TestDefaultTracerInstallAndFault(t *testing.T) {
	old := Default()
	defer SetDefault(old)

	SetDefault(nil)
	if f := Start("encode"); f != nil {
		t.Fatal("Start should return nil with tracing off")
	}
	Fault("should be a no-op") // must not panic with no tracer

	dump := t.TempDir() + "/fault.json"
	tr := New(Config{SampleEvery: 1, FaultDumpPath: dump})
	SetDefault(tr)
	Start("decode").Finish(errors.New("frame panic"))
	Fault("frame_panic")
	frames := mustReadDump(t, dump)
	if frames.Reason != "frame_panic" {
		t.Errorf("dump reason = %q, want frame_panic", frames.Reason)
	}
	if len(frames.Frames) != 1 || frames.Frames[0].Error != "frame panic" {
		t.Errorf("dump frames = %+v, want the failed frame", frames.Frames)
	}
}
