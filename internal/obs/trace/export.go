package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"time"
)

// Exporter consumes retained frame traces. Implementations must be fast or
// buffer internally; Finish calls them inline on the finishing goroutine.
type Exporter interface {
	ExportFrame(*Snapshot) error
}

// JSONLExporter streams retained traces to w as one JSON object per line.
// The first write error sticks (later frames are dropped), mirroring the
// obs sink contract.
type JSONLExporter struct {
	mu  sync.Mutex
	enc *json.Encoder
	err error
}

// NewJSONLExporter wraps w.
func NewJSONLExporter(w io.Writer) *JSONLExporter {
	return &JSONLExporter{enc: json.NewEncoder(w)}
}

// ExportFrame writes one line.
func (e *JSONLExporter) ExportFrame(s *Snapshot) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.err != nil {
		return e.err
	}
	e.err = e.enc.Encode(s)
	return e.err
}

// Flush returns the first encode/write error (lines are unbuffered).
func (e *JSONLExporter) Flush() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}

// Dump is the flight-recorder dump format: the retained ring plus enough
// context to interpret it offline.
type Dump struct {
	Reason     string      `json:"reason"`
	DumpedAt   time.Time   `json:"dumped_at"`
	Total      uint64      `json:"frames_recorded_total"`
	Frames     []*Snapshot `json:"frames"`
	SampleEach int         `json:"sample_every"`
}

// WriteDump writes the flight recorder as indented JSON.
func (t *Tracer) WriteDump(w io.Writer, reason string) error {
	if t == nil {
		return ErrNoTracer
	}
	d := Dump{
		Reason:     reason,
		DumpedAt:   time.Now(),
		Total:      t.flight.total(),
		Frames:     t.Flight(),
		SampleEach: t.cfg.SampleEvery,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// dumpFile writes the flight recorder dump to path, replacing any previous
// dump (the latest fault wins).
func (t *Tracer) dumpFile(path, reason string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := t.WriteDump(f, reason)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

// DumpToFile writes the flight recorder dump to path.
func (t *Tracer) DumpToFile(path, reason string) error {
	if t == nil {
		return ErrNoTracer
	}
	t.faultMu.Lock()
	defer t.faultMu.Unlock()
	return t.dumpFile(path, reason)
}

// chromeEvent is one Chrome trace-event ("X" complete events only).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`  // microseconds
	Dur  float64        `json:"dur"` // microseconds
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object form of the trace-event format, which
// Perfetto and chrome://tracing both load.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace renders frame traces in the Chrome trace-event format:
// one row (tid) per engine worker (facade frames land on tid 0), a root
// slice per frame, a queue-wait slice when the frame went through the
// pool, and one slice per pipeline-stage span. Timestamps are normalized
// to the earliest frame so the viewer opens at t=0.
func WriteChromeTrace(w io.Writer, frames []*Snapshot) error {
	var base int64
	for i, f := range frames {
		if i == 0 || f.StartUnixNS < base {
			base = f.StartUnixNS
		}
	}
	us := func(ns int64) float64 { return float64(ns) / 1e3 }
	ct := chromeTrace{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	for _, f := range frames {
		tid := f.Worker + 1 // facade frames (worker -1) share row 0
		start := f.StartUnixNS - base
		args := map[string]any{"trace_id": f.TraceID}
		if f.Error != "" {
			args["error"] = f.Error
		}
		if f.Retained != "" {
			args["retained"] = f.Retained
		}
		ct.TraceEvents = append(ct.TraceEvents, chromeEvent{
			Name: f.Kind, Cat: "frame", Ph: "X",
			TS: us(start), Dur: us(f.TotalNS), PID: 1, TID: tid, Args: args,
		})
		if f.QueueWaitNS > 0 {
			ct.TraceEvents = append(ct.TraceEvents, chromeEvent{
				Name: "queue_wait", Cat: "queue", Ph: "X",
				TS: us(start), Dur: us(f.QueueWaitNS), PID: 1, TID: tid,
				Args: map[string]any{"trace_id": f.TraceID},
			})
		}
		for _, sp := range f.Spans {
			args := map[string]any{"trace_id": f.TraceID}
			if sp.Count > 1 {
				args["count"] = sp.Count
			}
			ct.TraceEvents = append(ct.TraceEvents, chromeEvent{
				Name: sp.Name, Cat: "stage", Ph: "X",
				TS: us(start + sp.StartNS), Dur: us(sp.DurNS), PID: 1, TID: tid,
				Args: args,
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(ct)
}

// registerHandlerOnce guards the /debug/traces mount (see SetDefault).
var registerHandlerOnce sync.Once

// Handler serves the default tracer's retained traces beside the
// Prometheus exposition:
//
//	GET /debug/traces               retained traces as JSON
//	GET /debug/traces?format=chrome Chrome trace-event export (Perfetto)
//	GET /debug/traces?ring=flight   full flight recorder instead
//
// The handler reads the tracer at request time, so it can be mounted
// before SetDefault and keeps working across tracer swaps.
func Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t := Default()
		if t == nil {
			http.Error(w, "tracing disabled: install a tracer with trace.SetDefault", http.StatusServiceUnavailable)
			return
		}
		frames := t.Retained()
		if r.URL.Query().Get("ring") == "flight" {
			frames = t.Flight()
		}
		if r.URL.Query().Get("format") == "chrome" {
			w.Header().Set("Content-Type", "application/json")
			if err := WriteChromeTrace(w, frames); err != nil {
				http.Error(w, fmt.Sprintf("chrome export: %v", err), http.StatusInternalServerError)
			}
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			Retained int         `json:"retained"`
			Recorded uint64      `json:"frames_recorded_total"`
			Frames   []*Snapshot `json:"frames"`
		}{Retained: len(frames), Recorded: t.flight.total(), Frames: frames})
	})
}
