package trace

import (
	"sort"
	"sync/atomic"
)

// ring is the lock-free flight recorder: a fixed array of atomic snapshot
// pointers plus a monotone ticket counter. Writers claim a slot with one
// atomic add and publish the finished snapshot with one atomic store —
// no mutex on the frame-finish path, so a panicking goroutine dumping the
// ring can never deadlock against in-flight writers.
type ring struct {
	slots []atomic.Pointer[Snapshot]
	next  atomic.Uint64
}

func (r *ring) init(n int) {
	if n < 1 {
		n = 1
	}
	r.slots = make([]atomic.Pointer[Snapshot], n)
}

// put publishes one snapshot, overwriting the oldest slot when full.
func (r *ring) put(s *Snapshot) {
	i := r.next.Add(1) - 1
	r.slots[i%uint64(len(r.slots))].Store(s)
}

// total returns how many snapshots were ever published.
func (r *ring) total() uint64 { return r.next.Load() }

// snapshot copies the retained snapshots, ordered by frame start time.
// Reads race benignly with concurrent puts: each slot read is atomic, so
// the result is always a set of complete snapshots (possibly missing the
// very newest), which is what a post-mortem dump needs.
func (r *ring) snapshot() []*Snapshot {
	out := make([]*Snapshot, 0, len(r.slots))
	for i := range r.slots {
		if s := r.slots[i].Load(); s != nil {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].StartUnixNS < out[j].StartUnixNS })
	return out
}
