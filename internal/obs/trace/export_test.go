package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"
)

func mustReadDump(t *testing.T, path string) Dump {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read dump: %v", err)
	}
	var d Dump
	if err := json.Unmarshal(raw, &d); err != nil {
		t.Fatalf("dump is not valid JSON: %v\n%s", err, raw)
	}
	return d
}

func TestJSONLExporterWritesOneObjectPerLine(t *testing.T) {
	var buf bytes.Buffer
	exp := NewJSONLExporter(&buf)
	tr := New(Config{SampleEvery: 1})
	tr.AddExporter(exp)
	tr.Start("encode").Finish(nil)
	tr.Start("decode").Finish(errors.New("bad SIGNAL"))
	if err := exp.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	sc := bufio.NewScanner(&buf)
	var kinds []string
	for sc.Scan() {
		var s Snapshot
		if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
			t.Fatalf("line is not JSON: %v", err)
		}
		kinds = append(kinds, s.Kind)
	}
	if len(kinds) != 2 || kinds[0] != "encode" || kinds[1] != "decode" {
		t.Fatalf("exported kinds = %v, want [encode decode]", kinds)
	}
}

// failWriter fails every write after the first n bytes.
type failWriter struct{ budget int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.budget <= 0 {
		return 0, errors.New("disk full")
	}
	f.budget -= len(p)
	return len(p), nil
}

func TestJSONLExporterStickyError(t *testing.T) {
	exp := NewJSONLExporter(&failWriter{})
	s := &Snapshot{TraceID: "0000000000000001", Kind: "encode"}
	if err := exp.ExportFrame(s); err == nil {
		t.Fatal("ExportFrame should fail on a failing writer")
	}
	if err := exp.ExportFrame(s); err == nil {
		t.Fatal("second ExportFrame should return the sticky error")
	}
	if err := exp.Flush(); err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("Flush = %v, want sticky disk full", err)
	}
}

func TestExportErrorsAreCountedNotFatal(t *testing.T) {
	tr := New(Config{SampleEvery: 1})
	tr.AddExporter(NewJSONLExporter(&failWriter{}))
	f := tr.Start("encode")
	f.Finish(nil) // must not panic despite the failing exporter
	if n := len(tr.Retained()); n != 1 {
		t.Fatalf("retained %d, want 1 — export failure must not drop the frame", n)
	}
}

func TestWriteChromeTraceIsLoadableJSON(t *testing.T) {
	tr := New(Config{SampleEvery: 1})
	f := tr.Start("decode")
	f.Enqueued()
	f.Dequeued(1)
	m := f.Begin("rx.viterbi")
	time.Sleep(time.Millisecond)
	m.End()
	f.Finish(nil)

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr.Retained()); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var ct struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			TID  int     `json:"tid"`
			Args map[string]any
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &ct); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	names := map[string]bool{}
	for _, ev := range ct.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("event %q has ph=%q, want X", ev.Name, ev.Ph)
		}
		if ev.TS < 0 || ev.Dur < 0 {
			t.Errorf("event %q has negative timing ts=%v dur=%v", ev.Name, ev.TS, ev.Dur)
		}
		names[ev.Name] = true
	}
	for _, want := range []string{"decode", "queue_wait", "rx.viterbi"} {
		if !names[want] {
			t.Errorf("chrome export missing %q event (have %v)", want, names)
		}
	}
}

func TestHandlerServesJSONAndChrome(t *testing.T) {
	old := Default()
	defer SetDefault(old)

	SetDefault(nil)
	rr := httptest.NewRecorder()
	Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/traces", nil))
	if rr.Code != 503 {
		t.Fatalf("disabled handler status = %d, want 503", rr.Code)
	}

	tr := New(Config{SampleEvery: 1})
	SetDefault(tr)
	tr.Start("encode").Finish(nil)

	rr = httptest.NewRecorder()
	Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/traces", nil))
	if rr.Code != 200 {
		t.Fatalf("status = %d, want 200", rr.Code)
	}
	var body struct {
		Retained int         `json:"retained"`
		Frames   []*Snapshot `json:"frames"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
		t.Fatalf("response is not JSON: %v", err)
	}
	if body.Retained != 1 || len(body.Frames) != 1 {
		t.Fatalf("retained = %d frames = %d, want 1/1", body.Retained, len(body.Frames))
	}

	rr = httptest.NewRecorder()
	Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/traces?format=chrome", nil))
	if rr.Code != 200 || !strings.Contains(rr.Body.String(), "traceEvents") {
		t.Fatalf("chrome format: status=%d body=%q", rr.Code, rr.Body.String()[:min(120, rr.Body.Len())])
	}

	rr = httptest.NewRecorder()
	Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/traces?ring=flight", nil))
	if rr.Code != 200 {
		t.Fatalf("flight ring: status=%d", rr.Code)
	}
}

func TestDumpToFileRoundTrips(t *testing.T) {
	tr := New(Config{SampleEvery: 1})
	f := tr.Start("decode")
	f.Begin("rx.descramble").End()
	f.Finish(errors.New("timeout"))
	path := t.TempDir() + "/dump.json"
	if err := tr.DumpToFile(path, "test_dump"); err != nil {
		t.Fatalf("DumpToFile: %v", err)
	}
	d := mustReadDump(t, path)
	if d.Reason != "test_dump" || d.Total != 1 || len(d.Frames) != 1 {
		t.Fatalf("dump = %+v, want one recorded frame", d)
	}
	if len(d.Frames[0].Spans) != 1 || d.Frames[0].Spans[0].Name != "rx.descramble" {
		t.Fatalf("dump spans = %+v", d.Frames[0].Spans)
	}
}
