// Package trace is the frame-scoped tracing layer of the observability
// substrate: one root span per encode or decode with child spans for every
// pipeline stage (payload→codeword→waveform on TX; preamble detect →
// SIGNAL → equalize → demap → Viterbi → descramble on RX), queue-wait vs.
// service time attribution through the engine worker pool, head sampling
// plus tail-based capture (every failed, slow, panicked or timed-out frame
// is retained), a lock-free flight recorder holding the last N frame
// traces, and exporters in JSONL and Chrome trace-event format (loadable
// in Perfetto).
//
// Like the metrics registry, everything is nil-safe: with no Tracer
// installed, Start returns a nil *Frame whose methods are no-ops that
// never touch the clock, so the disabled hot path costs one nil check per
// instrumentation point and zero allocations.
package trace

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sledzig/internal/obs"
)

// Config selects the tracer's sampling and retention policy. The zero
// value is a tail-capture-only tracer: every frame is recorded into the
// flight ring, but only failed frames are retained for export.
type Config struct {
	// SampleEvery enables head sampling: every Nth frame is retained for
	// export regardless of outcome (1 retains every frame, 0 disables head
	// sampling — failures and slow frames are still captured).
	SampleEvery int
	// LatencyThreshold enables tail capture by latency: any frame whose
	// total wall time meets or exceeds it is retained. Zero disables the
	// latency rung (errors are always retained).
	LatencyThreshold time.Duration
	// FlightSize is the flight recorder capacity in frames (default 256):
	// the last N finished frame traces, regardless of retention.
	FlightSize int
	// RetainedSize bounds the retained ring served by /debug/traces
	// (default 64).
	RetainedSize int
	// FaultDumpPath, when non-empty, is the file the flight recorder is
	// dumped to (as JSON, overwriting) whenever a fault is reported — an
	// engine frame panic or timeout, or an explicit Fault call.
	FaultDumpPath string
}

func (c Config) withDefaults() Config {
	if c.FlightSize <= 0 {
		c.FlightSize = 256
	}
	if c.RetainedSize <= 0 {
		c.RetainedSize = 64
	}
	return c
}

// Tracer issues frame traces and owns the retention machinery. All methods
// on a nil *Tracer are no-ops, mirroring the obs registry contract.
type Tracer struct {
	cfg Config
	seq atomic.Uint64

	flight   ring // every finished frame, last FlightSize
	retained ring // head-sampled and tail-captured frames, last RetainedSize

	expMu     sync.Mutex
	exporters []Exporter

	faultMu sync.Mutex
}

// New builds a tracer with the given policy.
func New(cfg Config) *Tracer {
	cfg = cfg.withDefaults()
	t := &Tracer{cfg: cfg}
	t.flight.init(cfg.FlightSize)
	t.retained.init(cfg.RetainedSize)
	return t
}

// defaultTracer is the process-wide opt-in tracer; nil until SetDefault.
var defaultTracer atomic.Pointer[Tracer]

// SetDefault installs t as the process-wide tracer picked up by the engine
// and the facade encode/decode paths, and mounts the /debug/traces
// endpoint on the obs diagnostics mux. Passing nil turns tracing back off
// (the endpoint stays mounted and reports tracing disabled).
func SetDefault(t *Tracer) {
	registerHandlerOnce.Do(func() {
		obs.RegisterDebugHandler("/debug/traces", Handler())
	})
	defaultTracer.Store(t)
}

// Default returns the process-wide tracer, or nil when tracing is off.
func Default() *Tracer { return defaultTracer.Load() }

// Start begins a frame trace of the given kind ("encode", "decode", ...)
// on the default tracer; nil (all methods no-ops) when tracing is off.
func Start(kind string) *Frame { return Default().Start(kind) }

// maxFrameSpans bounds the distinct span names one frame can carry; spans
// past the cap are dropped rather than grown (the pipeline has ~16 stages).
const maxFrameSpans = 24

// Span is one named slice of a frame's timeline. Stages that run once per
// OFDM symbol (equalize, demap, deinterleave) accumulate: DurNS sums every
// occurrence and Count tells them apart from single-shot stages.
type Span struct {
	Name    string
	StartNS int64 // offset from frame start, first occurrence
	EndNS   int64 // offset from frame start, last occurrence end
	DurNS   int64 // accumulated busy time
	Count   int
}

// Frame is one in-flight frame trace. It is created by Tracer.Start,
// carried through the engine job queue and the PHY/core pipelines, and
// closed exactly once by Finish. All methods are safe for concurrent use
// and safe on a nil *Frame (no-ops without clock reads) — the engine's
// deadline containment can abandon a pipeline goroutine that still holds
// the frame; its late span writes are dropped once the frame finished.
type Frame struct {
	t       *Tracer
	id      uint64
	kind    string
	sampled bool
	base    time.Time

	mu         sync.Mutex
	done       bool
	totalNS    int64
	queuedNS   int64
	dequeuedNS int64
	worker     int
	err        string
	nspans     int
	spans      [maxFrameSpans]Span
}

// Start begins a frame trace of the given kind. Returns nil (no-op
// methods) on a nil tracer.
func (t *Tracer) Start(kind string) *Frame {
	if t == nil {
		return nil
	}
	id := t.seq.Add(1)
	f := &Frame{
		t:          t,
		id:         id,
		kind:       kind,
		base:       time.Now(),
		queuedNS:   -1,
		dequeuedNS: -1,
		worker:     -1,
	}
	if n := t.cfg.SampleEvery; n > 0 && id%uint64(n) == 0 {
		f.sampled = true
	}
	metrics().started.Inc()
	return f
}

// TraceID returns the frame's numeric trace ID (0 on nil) — the value
// histogram exemplars carry to link latency buckets back to traces.
func (f *Frame) TraceID() uint64 {
	if f == nil {
		return 0
	}
	return f.id
}

// TraceIDHex returns the frame's trace ID in the 16-hex-digit form used by
// snapshots and exemplars ("" on nil).
func (f *Frame) TraceIDHex() string {
	if f == nil {
		return ""
	}
	return fmt.Sprintf("%016x", f.id)
}

// TotalNS returns the frame's total wall time in nanoseconds; 0 until
// Finish has run.
func (f *Frame) TotalNS() int64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.totalNS
}

// now returns the monotonic offset from the frame's start.
func (f *Frame) now() int64 { return int64(time.Since(f.base)) }

// Enqueued records the moment the frame entered a work queue; together
// with Dequeued it attributes queue wait separately from service time.
func (f *Frame) Enqueued() {
	if f == nil {
		return
	}
	n := f.now()
	f.mu.Lock()
	if !f.done && f.queuedNS < 0 {
		f.queuedNS = n
	}
	f.mu.Unlock()
}

// Dequeued records the moment a worker picked the frame up, and which
// worker. Everything after this point is service time.
func (f *Frame) Dequeued(worker int) {
	if f == nil {
		return
	}
	n := f.now()
	f.mu.Lock()
	if !f.done && f.dequeuedNS < 0 {
		f.dequeuedNS = n
		f.worker = worker
	}
	f.mu.Unlock()
}

// Mark is an open span occurrence returned by Begin; close it with End.
// The zero Mark (from a nil frame) is a no-op.
type Mark struct {
	f   *Frame
	idx int32
	t0  int64
}

// Begin opens (or re-opens, accumulating) the named span. Span names must
// be compile-time constants in lowercase dotted form — the spanlit
// analyzer enforces the same discipline as metric names. On a nil frame
// Begin returns the zero Mark without reading the clock.
func (f *Frame) Begin(name string) Mark {
	if f == nil {
		return Mark{}
	}
	n := f.now()
	f.mu.Lock()
	if f.done {
		f.mu.Unlock()
		return Mark{}
	}
	idx := -1
	for i := 0; i < f.nspans; i++ {
		if f.spans[i].Name == name {
			idx = i
			break
		}
	}
	if idx < 0 {
		if f.nspans == maxFrameSpans {
			f.mu.Unlock()
			return Mark{}
		}
		idx = f.nspans
		f.spans[idx] = Span{Name: name, StartNS: n}
		f.nspans++
	}
	f.mu.Unlock()
	return Mark{f: f, idx: int32(idx), t0: n}
}

// End closes the span occurrence, accumulating its duration. Safe after
// the frame finished (the write is dropped).
func (m Mark) End() {
	if m.f == nil {
		return
	}
	n := m.f.now()
	m.f.mu.Lock()
	if !m.f.done && int(m.idx) < m.f.nspans {
		sp := &m.f.spans[m.idx]
		sp.DurNS += n - m.t0
		sp.EndNS = n
		sp.Count++
	}
	m.f.mu.Unlock()
}

// Finish closes the frame trace with its outcome and runs the retention
// decision: the snapshot always enters the flight recorder; head-sampled
// frames, failed frames and frames past the latency threshold are
// additionally retained for export and /debug/traces. Finish is
// idempotent; only the first call takes effect.
func (f *Frame) Finish(err error) {
	if f == nil {
		return
	}
	total := f.now()
	f.mu.Lock()
	if f.done {
		f.mu.Unlock()
		return
	}
	f.done = true
	f.totalNS = total
	if err != nil {
		f.err = err.Error()
	}
	snap := f.snapshotLocked(total)
	f.mu.Unlock()

	t := f.t
	reason := ""
	switch {
	case err != nil:
		reason = "error"
	case f.sampled:
		reason = "head"
	case t.cfg.LatencyThreshold > 0 && time.Duration(total) >= t.cfg.LatencyThreshold:
		reason = "slow"
	}
	snap.Retained = reason

	m := metrics()
	m.finished.Inc()
	t.flight.put(snap)
	if reason == "" {
		return
	}
	switch reason {
	case "error":
		m.retainedErr.Inc()
	case "head":
		m.retainedHead.Inc()
	case "slow":
		m.retainedSlow.Inc()
	}
	t.retained.put(snap)
	t.expMu.Lock()
	exps := t.exporters
	t.expMu.Unlock()
	for _, e := range exps {
		if eerr := e.ExportFrame(snap); eerr != nil {
			m.exportErrors.Inc()
		}
	}
}

// snapshotLocked builds the immutable copy of the frame; f.mu held.
func (f *Frame) snapshotLocked(total int64) *Snapshot {
	s := &Snapshot{
		TraceID:     fmt.Sprintf("%016x", f.id),
		Kind:        f.kind,
		Worker:      f.worker,
		StartUnixNS: f.base.UnixNano(),
		TotalNS:     total,
		Error:       f.err,
	}
	if f.queuedNS >= 0 && f.dequeuedNS >= f.queuedNS {
		s.QueueWaitNS = f.dequeuedNS - f.queuedNS
	}
	if f.dequeuedNS >= 0 {
		s.ServiceNS = total - f.dequeuedNS
	} else {
		s.ServiceNS = total
	}
	s.Spans = make([]SpanSnapshot, f.nspans)
	for i := 0; i < f.nspans; i++ {
		sp := f.spans[i]
		s.Spans[i] = SpanSnapshot{
			Name:    sp.Name,
			StartNS: sp.StartNS,
			EndNS:   sp.EndNS,
			DurNS:   sp.DurNS,
			Count:   sp.Count,
		}
	}
	return s
}

// SpanSnapshot is one span of a finished frame trace. Offsets are
// nanoseconds from the frame's start.
type SpanSnapshot struct {
	Name    string `json:"name"`
	StartNS int64  `json:"start_ns"`
	EndNS   int64  `json:"end_ns"`
	DurNS   int64  `json:"dur_ns"`
	Count   int    `json:"count,omitempty"`
}

// Snapshot is one finished frame trace — the JSON-friendly form the flight
// recorder stores and the exporters write.
type Snapshot struct {
	TraceID string `json:"trace_id"`
	Kind    string `json:"kind"`
	// Worker is the engine worker index that served the frame; -1 for
	// frames traced outside the pool (facade one-shot encode/decode).
	Worker      int   `json:"worker"`
	StartUnixNS int64 `json:"start_unix_ns"`
	// QueueWaitNS is time spent enqueued before a worker picked the frame
	// up; ServiceNS the time on the worker; TotalNS the whole frame.
	QueueWaitNS int64  `json:"queue_wait_ns"`
	ServiceNS   int64  `json:"service_ns"`
	TotalNS     int64  `json:"total_ns"`
	Error       string `json:"error,omitempty"`
	// Retained says why the frame was kept for export: "head" (sampling),
	// "error", or "slow"; empty for flight-recorder-only frames.
	Retained string         `json:"retained,omitempty"`
	Spans    []SpanSnapshot `json:"spans"`
}

// Flight returns the flight recorder's current contents, oldest first.
func (t *Tracer) Flight() []*Snapshot {
	if t == nil {
		return nil
	}
	return t.flight.snapshot()
}

// Retained returns the retained traces (head-sampled, failed, slow),
// oldest first.
func (t *Tracer) Retained() []*Snapshot {
	if t == nil {
		return nil
	}
	return t.retained.snapshot()
}

// AddExporter registers an exporter that receives every retained frame.
func (t *Tracer) AddExporter(e Exporter) {
	if t == nil || e == nil {
		return
	}
	t.expMu.Lock()
	t.exporters = append(t.exporters, e)
	t.expMu.Unlock()
}

// ErrNoTracer is returned by dump helpers when tracing is not enabled.
var ErrNoTracer = errors.New("trace: no tracer installed")

// Fault reports a fault (engine frame panic/timeout, a failed soak) on the
// default tracer: counts it and, when FaultDumpPath is configured, dumps
// the flight recorder there. Call sites pass a short literal reason.
func Fault(reason string) {
	t := Default()
	if t == nil {
		return
	}
	metrics().faultDumps.Inc()
	if t.cfg.FaultDumpPath == "" {
		return
	}
	t.faultMu.Lock()
	defer t.faultMu.Unlock()
	_ = t.dumpFile(t.cfg.FaultDumpPath, reason)
}
