package obs

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"sync"
)

// Snapshot is a point-in-time copy of every metric in a registry — the
// JSON-friendly exposition used by run manifests, expvar and selfcheck.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the registry's current state. A nil registry yields an
// empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	counters, gauges, histograms := r.names()
	for _, n := range counters {
		s.Counters[n] = r.Counter(n).Value()
	}
	for _, n := range gauges {
		s.Gauges[n] = r.Gauge(n).Value()
	}
	for _, n := range histograms {
		s.Histograms[n] = r.Histogram(n).Snapshot()
	}
	return s
}

// PromName sanitizes a dotted metric name into a Prometheus-legal one:
// "wifi.tx.map.seconds" -> "sledzig_wifi_tx_map_seconds".
func PromName(name string) string {
	var b strings.Builder
	b.WriteString("sledzig_")
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == ':':
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as single samples,
// histograms as cumulative le-buckets plus _sum and _count. Output is
// sorted by metric name, so it doubles as golden-test material.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	counters, gauges, histograms := r.names()
	for _, n := range counters {
		pn := PromName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, r.Counter(n).Value()); err != nil {
			return err
		}
	}
	for _, n := range gauges {
		pn := PromName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", pn, pn, formatFloat(r.Gauge(n).Value())); err != nil {
			return err
		}
	}
	for _, n := range histograms {
		pn := PromName(n)
		snap := r.Histogram(n).Snapshot()
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
			return err
		}
		var cum uint64
		for _, b := range snap.Buckets {
			cum += b.Count
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", pn, formatFloat(b.UpperBound), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
			pn, snap.Count, pn, formatFloat(snap.Sum), pn, snap.Count); err != nil {
			return err
		}
	}
	return nil
}

// WriteOpenMetrics renders the registry in the OpenMetrics text format:
// the same samples as WritePrometheus, but counters gain the mandated
// _total suffix, histogram buckets carry exemplars when present
// ("# {trace_id=...} value" suffixes linking latency buckets to frame
// traces), and the output ends with the required "# EOF" marker.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	if r == nil {
		_, err := fmt.Fprint(w, "# EOF\n")
		return err
	}
	counters, gauges, histograms := r.names()
	for _, n := range counters {
		pn := PromName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s_total %d\n", pn, pn, r.Counter(n).Value()); err != nil {
			return err
		}
	}
	for _, n := range gauges {
		pn := PromName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", pn, pn, formatFloat(r.Gauge(n).Value())); err != nil {
			return err
		}
	}
	for _, n := range histograms {
		pn := PromName(n)
		snap := r.Histogram(n).Snapshot()
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
			return err
		}
		var cum uint64
		for _, b := range snap.Buckets {
			cum += b.Count
			line := fmt.Sprintf("%s_bucket{le=%q} %d", pn, formatFloat(b.UpperBound), cum)
			if e := b.Exemplar; e != nil {
				line += fmt.Sprintf(" # {trace_id=%q} %s", e.TraceID, formatFloat(e.Value))
				if e.UnixNS > 0 {
					line += fmt.Sprintf(" %s", formatFloat(float64(e.UnixNS)/1e9))
				}
			}
			if _, err := fmt.Fprintln(w, line); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
			pn, snap.Count, pn, formatFloat(snap.Sum), pn, snap.Count); err != nil {
			return err
		}
	}
	_, err := fmt.Fprint(w, "# EOF\n")
	return err
}

// formatFloat renders floats the way Prometheus clients expect: decimal
// when reasonable, "+Inf"/"-Inf" spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	default:
		return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.9f", v), "0"), ".")
	}
}

// expvarPublished tracks names already handed to expvar, which is
// process-global and panics on duplicates: the guard must span registries,
// not just repeated calls on one (a second registry building a mux must
// not crash the process — the first publication wins).
var (
	expvarMu        sync.Mutex
	expvarPublished = map[string]bool{}
)

// PublishExpvar publishes the registry under the given expvar name. Only
// the first publication per name across the whole process takes effect.
func (r *Registry) PublishExpvar(name string) {
	if r == nil {
		return
	}
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if expvarPublished[name] {
		return
	}
	expvarPublished[name] = true
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}

// openMetricsContentType is the negotiated OpenMetrics media type.
const openMetricsContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// Handler serves the registry as Prometheus text format, upgrading to
// OpenMetrics (which carries histogram exemplars) when the client's Accept
// header asks for application/openmetrics-text.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if strings.Contains(req.Header.Get("Accept"), "application/openmetrics-text") {
			w.Header().Set("Content-Type", openMetricsContentType)
			_ = r.WriteOpenMetrics(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// debugHandlers are extra endpoints other packages contribute to the
// diagnostics mux (the trace package mounts /debug/traces this way, so obs
// never imports it). Registration is idempotent per pattern: the first
// handler for a pattern wins.
var (
	debugHandlersMu sync.Mutex
	debugHandlers   = map[string]http.Handler{}
)

// RegisterDebugHandler contributes an endpoint to every mux NewMux builds
// afterwards. Safe for concurrent use; registering the same pattern twice
// keeps the first handler (NewMux would panic on duplicate mounts).
func RegisterDebugHandler(pattern string, h http.Handler) {
	if pattern == "" || h == nil {
		return
	}
	debugHandlersMu.Lock()
	defer debugHandlersMu.Unlock()
	if _, dup := debugHandlers[pattern]; dup {
		return
	}
	debugHandlers[pattern] = h
}

// NewMux builds the diagnostics mux a long-running binary mounts behind
// -metrics-addr: /metrics (Prometheus/OpenMetrics), /debug/vars (expvar,
// including the registry published as "sledzig"), the /debug/pprof family,
// and any endpoints contributed via RegisterDebugHandler (the trace
// package's /debug/traces).
func (r *Registry) NewMux() *http.ServeMux {
	r.PublishExpvar("sledzig")
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	extra := make([]string, 0, 4)
	debugHandlersMu.Lock()
	for pattern, h := range debugHandlers {
		mux.Handle(pattern, h)
		extra = append(extra, pattern)
	}
	debugHandlersMu.Unlock()
	sort.Strings(extra)
	banner := "sledzig diagnostics: /metrics /debug/vars /debug/pprof/"
	for _, p := range extra {
		banner += " " + p
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, banner)
	})
	return mux
}

// Serve starts the diagnostics server on addr in a background goroutine
// and returns the bound listener address (useful with ":0"). The server
// runs until the process exits.
func (r *Registry) Serve(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: metrics listener: %w", err)
	}
	srv := &http.Server{Handler: r.NewMux()}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), nil
}

// TopStages summarizes the busiest stages of a snapshot for human output:
// every "<scope>.<stage>.seconds" histogram with at least one call,
// sorted by total time spent, up to max entries (0 = all).
func (s Snapshot) TopStages(max int) []StageSummary {
	var out []StageSummary
	for name, h := range s.Histograms {
		if !strings.HasSuffix(name, ".seconds") || h.Count == 0 {
			continue
		}
		base := strings.TrimSuffix(name, ".seconds")
		out = append(out, StageSummary{
			Name:     base,
			Calls:    h.Count,
			TotalSec: h.Sum,
			MeanSec:  h.Mean(),
			P99Sec:   h.Quantile(0.99),
			Bytes:    s.Counters[base+".bytes"],
			Errors:   s.Counters[base+".errors"],
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TotalSec > out[j].TotalSec })
	if max > 0 && len(out) > max {
		out = out[:max]
	}
	return out
}

// StageSummary is one row of TopStages.
type StageSummary struct {
	Name     string
	Calls    uint64
	TotalSec float64
	MeanSec  float64
	P99Sec   float64
	Bytes    uint64
	Errors   uint64
}
