package obs

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
)

// Snapshot is a point-in-time copy of every metric in a registry — the
// JSON-friendly exposition used by run manifests, expvar and selfcheck.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the registry's current state. A nil registry yields an
// empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	counters, gauges, histograms := r.names()
	for _, n := range counters {
		s.Counters[n] = r.Counter(n).Value()
	}
	for _, n := range gauges {
		s.Gauges[n] = r.Gauge(n).Value()
	}
	for _, n := range histograms {
		s.Histograms[n] = r.Histogram(n).Snapshot()
	}
	return s
}

// PromName sanitizes a dotted metric name into a Prometheus-legal one:
// "wifi.tx.map.seconds" -> "sledzig_wifi_tx_map_seconds".
func PromName(name string) string {
	var b strings.Builder
	b.WriteString("sledzig_")
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == ':':
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as single samples,
// histograms as cumulative le-buckets plus _sum and _count. Output is
// sorted by metric name, so it doubles as golden-test material.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	counters, gauges, histograms := r.names()
	for _, n := range counters {
		pn := PromName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, r.Counter(n).Value()); err != nil {
			return err
		}
	}
	for _, n := range gauges {
		pn := PromName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", pn, pn, formatFloat(r.Gauge(n).Value())); err != nil {
			return err
		}
	}
	for _, n := range histograms {
		pn := PromName(n)
		snap := r.Histogram(n).Snapshot()
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
			return err
		}
		var cum uint64
		for _, b := range snap.Buckets {
			cum += b.Count
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", pn, formatFloat(b.UpperBound), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
			pn, snap.Count, pn, formatFloat(snap.Sum), pn, snap.Count); err != nil {
			return err
		}
	}
	return nil
}

// formatFloat renders floats the way Prometheus clients expect: decimal
// when reasonable, "+Inf"/"-Inf" spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	default:
		return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.9f", v), "0"), ".")
	}
}

// PublishExpvar publishes the registry under the given expvar name (once;
// expvar panics on duplicates, so repeated calls are ignored).
func (r *Registry) PublishExpvar(name string) {
	if r == nil {
		return
	}
	r.expvarOnce.Do(func() {
		expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
	})
}

// Handler serves the registry as Prometheus text format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// NewMux builds the diagnostics mux a long-running binary mounts behind
// -metrics-addr: /metrics (Prometheus), /debug/vars (expvar, including
// the registry published as "sledzig"), and the /debug/pprof family.
func (r *Registry) NewMux() *http.ServeMux {
	r.PublishExpvar("sledzig")
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "sledzig diagnostics: /metrics /debug/vars /debug/pprof/")
	})
	return mux
}

// Serve starts the diagnostics server on addr in a background goroutine
// and returns the bound listener address (useful with ":0"). The server
// runs until the process exits.
func (r *Registry) Serve(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: metrics listener: %w", err)
	}
	srv := &http.Server{Handler: r.NewMux()}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), nil
}

// TopStages summarizes the busiest stages of a snapshot for human output:
// every "<scope>.<stage>.seconds" histogram with at least one call,
// sorted by total time spent, up to max entries (0 = all).
func (s Snapshot) TopStages(max int) []StageSummary {
	var out []StageSummary
	for name, h := range s.Histograms {
		if !strings.HasSuffix(name, ".seconds") || h.Count == 0 {
			continue
		}
		base := strings.TrimSuffix(name, ".seconds")
		out = append(out, StageSummary{
			Name:     base,
			Calls:    h.Count,
			TotalSec: h.Sum,
			MeanSec:  h.Mean(),
			P99Sec:   h.Quantile(0.99),
			Bytes:    s.Counters[base+".bytes"],
			Errors:   s.Counters[base+".errors"],
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TotalSec > out[j].TotalSec })
	if max > 0 && len(out) > max {
		out = out[:max]
	}
	return out
}

// StageSummary is one row of TopStages.
type StageSummary struct {
	Name     string
	Calls    uint64
	TotalSec float64
	MeanSec  float64
	P99Sec   float64
	Bytes    uint64
	Errors   uint64
}
