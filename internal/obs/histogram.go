package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// Histogram bucket layout: log-linear over decades. Each power-of-ten
// decade [10^e, 10^(e+1)) is split into nine linear sub-buckets with
// lower bounds m*10^e for m = 1..9, covering histMinExp..histMaxExp
// (1 ns .. 1000 s when observing seconds). One underflow and one
// overflow bucket catch the rest. A bucket holds values in
// [lower, upper): a value exactly on an upper bound lands in the next
// bucket, so the exposed `le` bounds are exclusive — indistinguishable
// in practice for measured latencies, and cumulative counts stay
// consistent, which is all PromQL needs.
const (
	histMinExp      = -9
	histMaxExp      = 3
	histSubBuckets  = 9
	histRangeCount  = (histMaxExp - histMinExp + 1) * histSubBuckets
	histBucketCount = histRangeCount + 2 // + underflow + overflow
)

// pow10 avoids math.Pow on the observe path.
var pow10 = func() [histMaxExp - histMinExp + 1]float64 {
	var t [histMaxExp - histMinExp + 1]float64
	for i := range t {
		t[i] = math.Pow(10, float64(histMinExp+i))
	}
	return t
}()

// Histogram is a fixed-size log-linear latency/size histogram. Observe is
// allocation-free: an index computation plus three atomic adds. The zero
// value is ready; a nil *Histogram ignores observations.
type Histogram struct {
	buckets [histBucketCount]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64 // float64 bits, CAS-updated

	// exemplars is allocated on the first ObserveExemplar call; nil for
	// histograms that never see traced observations (see exemplar.go).
	exemplars atomic.Pointer[exemplarSet]
}

// bucketIndex maps a value to its bucket: 0 is underflow (v < 10^minExp),
// histBucketCount-1 overflow (v >= 10^(maxExp+1)), the rest log-linear.
func bucketIndex(v float64) int {
	if v < pow10[0] || math.IsNaN(v) {
		return 0
	}
	if math.IsInf(v, 1) {
		return histBucketCount - 1
	}
	e := int(math.Floor(math.Log10(v)))
	if e > histMaxExp {
		return histBucketCount - 1
	}
	if e < histMinExp {
		e = histMinExp
	}
	sub := int(v / pow10[e-histMinExp])
	// Float round-off at decade boundaries can land sub at 0 or 10;
	// renormalize into 1..9.
	if sub >= 10 {
		e++
		if e > histMaxExp {
			return histBucketCount - 1
		}
		sub = 1
	}
	if sub < 1 {
		e--
		if e < histMinExp {
			return 0
		}
		sub = 9
	}
	return 1 + (e-histMinExp)*histSubBuckets + (sub - 1)
}

// BucketUpperBound returns the exclusive upper bound of bucket i (the
// `le` label value); +Inf for the overflow bucket.
func BucketUpperBound(i int) float64 {
	if i <= 0 {
		return pow10[0]
	}
	if i >= histBucketCount-1 {
		return math.Inf(1)
	}
	i--
	e, sub := i/histSubBuckets, i%histSubBuckets
	return float64(sub+2) * pow10[e]
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, floatBits(bitsFloat(old)+v)) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(d.Seconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return bitsFloat(h.sum.Load())
}

// HistogramSnapshot is a point-in-time copy of a histogram. Buckets are
// non-cumulative; only non-empty buckets are included.
type HistogramSnapshot struct {
	Count   uint64        `json:"count"`
	Sum     float64       `json:"sum"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// BucketCount is one non-empty histogram bucket. Exemplar, when present,
// names the trace behind a representative observation in this bucket.
type BucketCount struct {
	UpperBound float64   `json:"le"`
	Count      uint64    `json:"count"`
	Exemplar   *Exemplar `json:"exemplar,omitempty"`
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{Count: h.count.Load(), Sum: h.Sum()}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			s.Buckets = append(s.Buckets, BucketCount{UpperBound: BucketUpperBound(i), Count: n, Exemplar: h.exemplar(i)})
		}
	}
	return s
}

// Mean returns the average observed value (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-quantile (0..1) from the bucket counts,
// attributing each bucket's mass to its upper bound — a conservative
// estimate suitable for human-readable summaries.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(s.Count)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for _, b := range s.Buckets {
		cum += b.Count
		if cum >= target {
			return b.UpperBound
		}
	}
	return s.Buckets[len(s.Buckets)-1].UpperBound
}
