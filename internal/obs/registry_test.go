package obs

import (
	"sync"
	"testing"
	"time"
)

func TestConcurrentCounters(t *testing.T) {
	r := New()
	c := r.Counter("hot.path")
	g := r.Gauge("level")
	h := r.Histogram("lat.seconds")

	const workers, perWorker = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				// Same names resolved concurrently must return the same handles.
				r.Counter("hot.path").Add(1)
				g.Add(1)
				h.Observe(1e-6)
			}
		}()
	}
	wg.Wait()

	if got := c.Value(); got != 2*workers*perWorker {
		t.Fatalf("counter %d, want %d", got, 2*workers*perWorker)
	}
	if got := g.Value(); got != workers*perWorker {
		t.Fatalf("gauge %g, want %d", got, workers*perWorker)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("histogram count %d, want %d", got, workers*perWorker)
	}
}

func TestNilRegistrySafe(t *testing.T) {
	var r *Registry
	r.Counter("a").Inc()
	r.Gauge("b").Set(1)
	r.Histogram("c").Observe(1)
	r.Bus().Publish(Event{})
	r.Emit(Event{})
	if r.Bus().Active() {
		t.Fatal("nil bus active")
	}
	sc := r.Scope("x")
	sc.Counter("y").Inc()
	sc.Gauge("z").Add(1)
	st := sc.Stage("w")
	start := st.Start()
	if !start.IsZero() {
		t.Fatal("nil stage Start should not read the clock")
	}
	st.Done(start, 10)
	st.Fail(start)
	if st.Calls() != 0 || st.Seconds() != nil {
		t.Fatal("nil stage should report nothing")
	}
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Histograms) != 0 {
		t.Fatal("nil registry snapshot should be empty")
	}
}

func TestStageAccounting(t *testing.T) {
	r := New()
	st := r.Scope("core.encode").Stage("solve")
	start := st.Start()
	time.Sleep(time.Millisecond)
	st.Done(start, 128)
	st.Fail(st.Start())

	if got := r.Counter("core.encode.solve.calls").Value(); got != 2 {
		t.Fatalf("calls %d", got)
	}
	if got := r.Counter("core.encode.solve.bytes").Value(); got != 128 {
		t.Fatalf("bytes %d", got)
	}
	if got := r.Counter("core.encode.solve.errors").Value(); got != 1 {
		t.Fatalf("errors %d", got)
	}
	h := r.Histogram("core.encode.solve.seconds")
	if h.Count() != 2 || h.Sum() < 1e-3 {
		t.Fatalf("seconds count %d sum %g", h.Count(), h.Sum())
	}
}

func TestLazyRebuildsOnSetDefault(t *testing.T) {
	prev := Default()
	defer SetDefault(prev)

	var lazy Lazy[*Counter]
	builds := 0
	build := func(r *Registry) *Counter {
		builds++
		return r.Counter("lazy.test")
	}

	SetDefault(nil)
	if c := lazy.Get(build); c != nil {
		t.Fatal("nil registry should yield nil handle")
	}
	lazy.Get(build)
	if builds != 1 {
		t.Fatalf("builds %d after repeat with unchanged (nil) registry", builds)
	}

	r1 := New()
	SetDefault(r1)
	c := lazy.Get(build)
	c.Inc()
	lazy.Get(build).Inc()
	if builds != 2 {
		t.Fatalf("builds %d after registry install", builds)
	}
	if got := r1.Counter("lazy.test").Value(); got != 2 {
		t.Fatalf("lazy counter routed %d increments to r1, want 2", got)
	}

	r2 := New()
	SetDefault(r2)
	lazy.Get(build).Inc()
	if builds != 3 {
		t.Fatalf("builds %d after registry swap", builds)
	}
	if r2.Counter("lazy.test").Value() != 1 || r1.Counter("lazy.test").Value() != 2 {
		t.Fatal("increments leaked across registries")
	}
}

func TestTopStages(t *testing.T) {
	r := New()
	slow := r.Scope("a").Stage("slow")
	fast := r.Scope("a").Stage("fast")
	slow.Done(time.Now().Add(-100*time.Millisecond), 10)
	fast.Done(time.Now().Add(-time.Millisecond), 20)
	fast.Done(time.Now().Add(-time.Millisecond), 20)
	r.Histogram("not.a.stage").Observe(1) // no .seconds suffix — excluded

	top := r.Snapshot().TopStages(0)
	if len(top) != 2 {
		t.Fatalf("%d stages, want 2", len(top))
	}
	if top[0].Name != "a.slow" || top[1].Name != "a.fast" {
		t.Fatalf("order %q, %q", top[0].Name, top[1].Name)
	}
	if top[1].Calls != 2 || top[1].Bytes != 40 {
		t.Fatalf("fast stage calls %d bytes %d", top[1].Calls, top[1].Bytes)
	}
	if got := r.Snapshot().TopStages(1); len(got) != 1 {
		t.Fatalf("max=1 returned %d", len(got))
	}
}
