// Package bits provides bit-level utilities shared by the WiFi and ZigBee
// baseband implementations: bit-slice conversion, GF(2) arithmetic, and
// deterministic pseudo-random data generation.
//
// Throughout the repository a "bit" is a byte holding 0 or 1. This is the
// natural representation for coding-theory pipelines (scramblers,
// convolutional coders, interleavers) where bits are permuted and combined
// individually; packing is only used at the byte-oriented boundaries.
package bits

import (
	"fmt"
	"math/rand"
)

// Bit is a single binary digit stored in a byte (0 or 1).
type Bit = byte

// FromBytes expands a byte slice into bits, LSB first within each byte,
// matching the 802.11 convention that the first transmitted bit of an octet
// is its least-significant bit.
func FromBytes(data []byte) []Bit {
	out := make([]Bit, 0, len(data)*8)
	for _, b := range data {
		for i := 0; i < 8; i++ {
			out = append(out, (b>>i)&1)
		}
	}
	return out
}

// CopyBytes expands data into dst as bits, LSB first within each byte
// (FromBytes without the allocation), and returns the number of bit
// elements written. dst must hold at least 8*len(data) elements.
func CopyBytes(dst []Bit, data []byte) int {
	_ = dst[:8*len(data)]
	for j, b := range data {
		for i := 0; i < 8; i++ {
			dst[8*j+i] = (b >> i) & 1
		}
	}
	return 8 * len(data)
}

// Grow returns s resized to n elements, reusing its backing array when the
// capacity allows and reallocating otherwise. Contents are unspecified —
// callers overwrite every element.
func Grow(s []Bit, n int) []Bit {
	if cap(s) < n {
		return make([]Bit, n)
	}
	return s[:n]
}

// ToBytes packs bits into bytes, LSB first within each byte (the inverse of
// FromBytes). It returns an error if len(b) is not a multiple of eight or if
// any element is not 0 or 1.
func ToBytes(b []Bit) ([]byte, error) {
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("bits: length %d is not a multiple of 8", len(b))
	}
	out := make([]byte, len(b)/8)
	for i, bit := range b {
		switch bit {
		case 0:
		case 1:
			out[i/8] |= 1 << (i % 8)
		default:
			return nil, fmt.Errorf("bits: element %d has non-binary value %d", i, bit)
		}
	}
	return out, nil
}

// ToBytesInto packs bits into dst, LSB first within each byte (ToBytes
// without the allocation). dst must hold exactly len(b)/8 bytes.
func ToBytesInto(dst []byte, b []Bit) error {
	if len(b)%8 != 0 {
		return fmt.Errorf("bits: length %d is not a multiple of 8", len(b))
	}
	if len(dst) != len(b)/8 {
		return fmt.Errorf("bits: destination of %d bytes does not fit %d bits", len(dst), len(b))
	}
	for i := range dst {
		dst[i] = 0
	}
	for i, bit := range b {
		switch bit {
		case 0:
		case 1:
			dst[i/8] |= 1 << (i % 8)
		default:
			return fmt.Errorf("bits: element %d has non-binary value %d", i, bit)
		}
	}
	return nil
}

// MustToBytes is ToBytes for inputs known to be valid; it panics on error.
// Intended for tests and internal call sites that construct the slice
// themselves.
func MustToBytes(b []Bit) []byte {
	out, err := ToBytes(b)
	if err != nil {
		panic(err)
	}
	return out
}

// FromUint extracts the n low-order bits of v, MSB first. This matches the
// 802.11 SIGNAL-field and chip-sequence tabulations, which write bit strings
// most-significant first.
func FromUint(v uint64, n int) []Bit {
	out := make([]Bit, n)
	for i := 0; i < n; i++ {
		out[i] = Bit((v >> (n - 1 - i)) & 1)
	}
	return out
}

// ToUint interprets bits MSB first as an unsigned integer (inverse of
// FromUint). len(b) must be at most 64.
func ToUint(b []Bit) uint64 {
	var v uint64
	for _, bit := range b {
		v = v<<1 | uint64(bit&1)
	}
	return v
}

// Xor returns the element-wise XOR of a and b, which must have equal length.
func Xor(a, b []Bit) []Bit {
	if len(a) != len(b) {
		panic(fmt.Sprintf("bits: Xor length mismatch %d != %d", len(a), len(b)))
	}
	out := make([]Bit, len(a))
	for i := range a {
		out[i] = (a[i] ^ b[i]) & 1
	}
	return out
}

// Parity returns the XOR (mod-2 sum) of all bits in b.
func Parity(b []Bit) Bit {
	var p Bit
	for _, bit := range b {
		p ^= bit & 1
	}
	return p
}

// DotGF2 returns the GF(2) inner product of a polynomial's coefficient mask
// and a register state: the parity of (mask AND state). Both are packed with
// bit i of the mask multiplying bit i of the state.
func DotGF2(mask, state uint32) Bit {
	v := mask & state
	// Fold parity.
	v ^= v >> 16
	v ^= v >> 8
	v ^= v >> 4
	v ^= v >> 2
	v ^= v >> 1
	return Bit(v & 1)
}

// HammingDistance returns the number of positions where a and b differ.
// The slices must have equal length.
func HammingDistance(a, b []Bit) int {
	if len(a) != len(b) {
		panic(fmt.Sprintf("bits: HammingDistance length mismatch %d != %d", len(a), len(b)))
	}
	d := 0
	for i := range a {
		if a[i]&1 != b[i]&1 {
			d++
		}
	}
	return d
}

// Equal reports whether a and b contain the same bit values.
func Equal(a, b []Bit) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i]&1 != b[i]&1 {
			return false
		}
	}
	return true
}

// Random returns n pseudo-random bits drawn from rng. Callers own the rng so
// experiments stay deterministic under a fixed seed.
func Random(rng *rand.Rand, n int) []Bit {
	out := make([]Bit, n)
	for i := range out {
		out[i] = Bit(rng.Intn(2))
	}
	return out
}

// RandomBytes returns n pseudo-random bytes drawn from rng.
func RandomBytes(rng *rand.Rand, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(rng.Intn(256))
	}
	return out
}

// Clone returns a copy of b. A nil input yields a nil output.
func Clone(b []Bit) []Bit {
	if b == nil {
		return nil
	}
	out := make([]Bit, len(b))
	copy(out, b)
	return out
}

// Validate returns an error if any element of b is not 0 or 1.
func Validate(b []Bit) error {
	for i, bit := range b {
		if bit > 1 {
			return fmt.Errorf("bits: element %d has non-binary value %d", i, bit)
		}
	}
	return nil
}

// String renders bits as a compact "0"/"1" string for diagnostics.
func String(b []Bit) string {
	out := make([]byte, len(b))
	for i, bit := range b {
		out[i] = '0' + (bit & 1)
	}
	return string(out)
}
