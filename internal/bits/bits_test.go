package bits

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFromToBytesRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		b := FromBytes(data)
		back, err := ToBytes(b)
		if err != nil {
			return false
		}
		if len(back) != len(data) {
			return false
		}
		for i := range data {
			if back[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFromBytesLSBFirst(t *testing.T) {
	got := FromBytes([]byte{0x01, 0x80})
	want := []Bit{1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1}
	if !Equal(got, want) {
		t.Fatalf("FromBytes = %s, want %s", String(got), String(want))
	}
}

func TestToBytesRejectsBadInput(t *testing.T) {
	if _, err := ToBytes([]Bit{1, 0, 1}); err == nil {
		t.Error("non-octet length accepted")
	}
	if _, err := ToBytes([]Bit{0, 1, 2, 0, 0, 0, 0, 0}); err == nil {
		t.Error("non-binary value accepted")
	}
}

func TestFromToUint(t *testing.T) {
	cases := []struct {
		v uint64
		n int
		s string
	}{
		{0b1011, 4, "1011"},
		{0b1, 1, "1"},
		{0b0011, 4, "0011"},
		{0x5D, 7, "1011101"},
	}
	for _, tc := range cases {
		got := FromUint(tc.v, tc.n)
		if String(got) != tc.s {
			t.Errorf("FromUint(%#b, %d) = %s, want %s", tc.v, tc.n, String(got), tc.s)
		}
		if back := ToUint(got); back != tc.v {
			t.Errorf("ToUint(%s) = %d, want %d", tc.s, back, tc.v)
		}
	}
}

func TestXorParity(t *testing.T) {
	a := []Bit{1, 0, 1, 1}
	b := []Bit{1, 1, 0, 1}
	x := Xor(a, b)
	if String(x) != "0110" {
		t.Fatalf("Xor = %s", String(x))
	}
	if Parity(a) != 1 || Parity(b) != 1 || Parity(x) != 0 {
		t.Fatal("parity mismatch")
	}
}

func TestDotGF2(t *testing.T) {
	// g0 = 0x6D against an all-ones window: parity of 5 taps = 1.
	if DotGF2(0x6D, 0x7F) != 1 {
		t.Fatal("DotGF2(0x6D, 0x7F) != 1")
	}
	// g1 = 0x4F has 5 taps too.
	if DotGF2(0x4F, 0x7F) != 1 {
		t.Fatal("DotGF2(0x4F, 0x7F) != 1")
	}
	if DotGF2(0x6D, 0) != 0 {
		t.Fatal("DotGF2 of zero state != 0")
	}
	// Single-bit sanity.
	if DotGF2(0x01, 0x01) != 1 || DotGF2(0x01, 0x02) != 0 {
		t.Fatal("single-tap DotGF2 wrong")
	}
}

func TestHammingDistanceAndEqual(t *testing.T) {
	a := []Bit{1, 0, 1, 0}
	b := []Bit{1, 1, 1, 1}
	if HammingDistance(a, b) != 2 {
		t.Fatal("distance != 2")
	}
	if Equal(a, b) {
		t.Fatal("unequal slices reported equal")
	}
	if !Equal(a, Clone(a)) {
		t.Fatal("clone not equal")
	}
	if Equal(a, a[:3]) {
		t.Fatal("different lengths reported equal")
	}
}

func TestRandomDeterministic(t *testing.T) {
	a := Random(rand.New(rand.NewSource(9)), 64)
	b := Random(rand.New(rand.NewSource(9)), 64)
	if !Equal(a, b) {
		t.Fatal("same seed produced different bits")
	}
	if err := Validate(a); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesGarbage(t *testing.T) {
	if err := Validate([]Bit{0, 1, 7}); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestCloneNil(t *testing.T) {
	if Clone(nil) != nil {
		t.Fatal("Clone(nil) != nil")
	}
}

func TestMustToBytesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustToBytes did not panic on bad input")
		}
	}()
	MustToBytes([]Bit{1, 0, 1})
}

func TestStringRendering(t *testing.T) {
	if s := String([]Bit{1, 0, 1, 1}); s != "1011" {
		t.Fatalf("String = %q", s)
	}
}
