package fault

import (
	"math/rand"

	"sledzig/internal/wifi"
)

// Bit-level faults damage the frame's control structure rather than its
// bulk samples: the SIGNAL symbol that declares mode and length, and the
// DATA symbols whose constellation points carry the extra-bit layout. Both
// operate at known sample offsets of the 802.11 PPDU, so they compose with
// the sample-level injectors in either order (apply them before Truncate
// or SFO shift the symbol grid).

// SignalCorruption negates Samples random samples inside the SIGNAL OFDM
// symbol — enough to flip coded bits past the rate-1/2 code and fail the
// parity check or declare a phantom mode/length.
type SignalCorruption struct {
	Samples int // default 8
}

func (SignalCorruption) Name() string { return "signal_corruption" }

func (sc SignalCorruption) Apply(rng *rand.Rand, wave []complex128) []complex128 {
	n := sc.Samples
	if n <= 0 {
		n = 8
	}
	lo, hi := wifi.PreambleLength, wifi.PreambleLength+wifi.SymbolLength
	if len(wave) < hi {
		hi = len(wave)
	}
	if hi <= lo {
		return wave
	}
	for k := 0; k < n; k++ {
		i := lo + rng.Intn(hi-lo)
		wave[i] = -wave[i]
	}
	return wave
}

// DataCorruption negates Samples random samples in each of Symbols
// randomly chosen DATA symbols, knocking constellation points off their
// rings — the extra-bit positions stop matching the detected plan, or the
// protected channel disappears from the constellation.
type DataCorruption struct {
	Symbols int // default 2
	Samples int // default 16
}

func (DataCorruption) Name() string { return "data_corruption" }

func (dc DataCorruption) Apply(rng *rand.Rand, wave []complex128) []complex128 {
	symbols, samples := dc.Symbols, dc.Samples
	if symbols <= 0 {
		symbols = 2
	}
	if samples <= 0 {
		samples = 16
	}
	dataStart := wifi.PreambleLength + wifi.SymbolLength // skip SIGNAL
	nSym := (len(wave) - dataStart) / wifi.SymbolLength
	if nSym <= 0 {
		return wave
	}
	for s := 0; s < symbols; s++ {
		symStart := dataStart + rng.Intn(nSym)*wifi.SymbolLength
		for k := 0; k < samples; k++ {
			i := symStart + rng.Intn(wifi.SymbolLength)
			wave[i] = -wave[i]
		}
	}
	return wave
}
