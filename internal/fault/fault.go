// Package fault corrupts baseband waveforms the way the paper's testbed
// does by accident: truncated captures, ADC clipping and quantization,
// impulse and burst interferers, mid-frame ZigBee collisions, oscillator
// drift, IQ imbalance, and targeted SIGNAL/DATA-region damage. Every
// injector is deterministic under a seed and composes through Chain, so
// the same hostile capture can be replayed in a regression test, a fuzz
// corpus, or the chaos soak. The package produces inputs; the decode
// pipeline's job is to turn every one of them into a typed error instead
// of a panic, a hang, or silent garbage.
package fault

import (
	"math/rand"
	"strings"

	"sledzig/internal/obs"
)

// Injector applies one impairment to a waveform. Implementations may
// modify wave in place and may return a slice of different length (e.g.
// truncation); callers that need the original intact must pass a copy —
// Chain.Apply does this once for the whole chain. All randomness is drawn
// from rng, so a fixed seed replays the exact corruption.
type Injector interface {
	// Name is a short stable identifier used in metrics and survival
	// tables ("truncate", "zigbee_collision", ...).
	Name() string
	Apply(rng *rand.Rand, wave []complex128) []complex128
}

// Chain is an ordered, seeded stack of injectors: the composite fault one
// hostile capture exhibits. The zero chain is a no-op.
type Chain struct {
	// Seed makes the whole chain deterministic; equal seeds and injector
	// stacks reproduce identical corrupted waveforms.
	Seed      int64
	Injectors []Injector
}

// Name joins the injector names with "+", e.g. "clip+cfo+truncate".
func (c Chain) Name() string {
	if len(c.Injectors) == 0 {
		return "clean"
	}
	parts := make([]string, len(c.Injectors))
	for i, inj := range c.Injectors {
		parts[i] = inj.Name()
	}
	return strings.Join(parts, "+")
}

// Apply runs the chain over a private copy of wave and returns the
// corrupted result. The input is never modified.
func (c Chain) Apply(wave []complex128) []complex128 {
	out := make([]complex128, len(wave))
	copy(out, wave)
	if len(c.Injectors) == 0 {
		return out
	}
	rng := rand.New(rand.NewSource(c.Seed))
	m := chainMetrics()
	m.chains.Inc()
	for _, inj := range c.Injectors {
		out = inj.Apply(rng, out)
		if r := obs.Default(); r != nil {
			//sledvet:ignore metriclit per-injector counters; names come from the fixed catalog and follow the convention
			r.Counter("fault.injected." + inj.Name()).Inc()
		}
	}
	return out
}

type faultMetrics struct {
	chains *obs.Counter
}

var faultLazy obs.Lazy[*faultMetrics]

var faultNil = &faultMetrics{}

func chainMetrics() *faultMetrics {
	return faultLazy.Get(func(r *obs.Registry) *faultMetrics {
		if r == nil {
			return faultNil
		}
		return &faultMetrics{chains: r.Counter("fault.chains")}
	})
}

// Catalog returns one instance of every injector with parameters
// randomized from rng — the palette RandomChain and the chaos soak draw
// from. Deterministic under rng's seed.
func Catalog(rng *rand.Rand) []Injector {
	return []Injector{
		Truncate{Fraction: 0.1 + 0.85*rng.Float64()},
		Dropout{Spans: 1 + rng.Intn(4), SpanLen: 32 + rng.Intn(256)},
		Clip{Factor: 0.8 + rng.Float64()},
		Quantize{Bits: 3 + rng.Intn(6)},
		Impulse{Count: 1 + rng.Intn(20), Scale: 4 + 12*rng.Float64()},
		Burst{Fraction: 0.02 + 0.2*rng.Float64(), PowerDB: 20 * rng.Float64()},
		ZigBeeCollision{PowerDB: -10 + 20*rng.Float64()},
		CFO{OffsetHz: (rng.Float64() - 0.5) * 2e5},
		SFO{PPM: (rng.Float64() - 0.5) * 200},
		IQImbalance{GainDB: 2 * rng.Float64(), PhaseDeg: 10 * rng.Float64()},
		SignalCorruption{Samples: 2 + rng.Intn(16)},
		DataCorruption{Symbols: 1 + rng.Intn(3), Samples: 4 + rng.Intn(32)},
	}
}

// RandomChain draws n injectors (with replacement) from the randomized
// catalog — the chaos soak's unit of work. Deterministic under seed.
func RandomChain(seed int64, n int) Chain {
	rng := rand.New(rand.NewSource(seed))
	cat := Catalog(rng)
	injs := make([]Injector, 0, n)
	for i := 0; i < n; i++ {
		injs = append(injs, cat[rng.Intn(len(cat))])
	}
	return Chain{Seed: rng.Int63(), Injectors: injs}
}

// MismatchedSeed returns a valid scrambler seed (1..127) guaranteed to
// differ from seed — the configuration-level fault where transmitter and
// receiver disagree out of band. It is not an Injector (the mismatch
// lives in the decoder's Config, not the waveform); the chaos soak and
// the robustness doc treat it as part of the fault taxonomy.
func MismatchedSeed(rng *rand.Rand, seed uint8) uint8 {
	for {
		s := uint8(1 + rng.Intn(127))
		if s != seed {
			return s
		}
	}
}
