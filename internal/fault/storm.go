package fault

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Storm injects worker-level faults — panics and stalls — into a frame
// pipeline, the failure mode a poisoned codec backend exhibits (as opposed
// to the waveform-level damage Injectors model). It is deterministic under
// its seed: the k-th Strike always resolves to the same fate regardless of
// which goroutine lands it, so a chaos run is replayable. Wire Strike into
// the engine's frame hook to drive panic containment, frame timeouts, and
// circuit breakers with real load.
type Storm struct {
	mu  sync.Mutex
	rng *rand.Rand

	// panicP and stallP are per-strike probabilities; stall is the sleep
	// injected on a stall strike (meant to exceed the target engine's
	// FrameTimeout so the frame is abandoned).
	panicP float64
	stallP float64
	stall  time.Duration

	panics atomic.Uint64
	stalls atomic.Uint64
}

// NewStorm builds a seeded storm striking with the given per-frame panic
// and stall probabilities (each clamped to [0,1]); stall is the injected
// sleep duration.
func NewStorm(seed int64, panicP, stallP float64, stall time.Duration) *Storm {
	clamp := func(p float64) float64 {
		if p < 0 {
			return 0
		}
		if p > 1 {
			return 1
		}
		return p
	}
	return &Storm{
		rng:    rand.New(rand.NewSource(seed)),
		panicP: clamp(panicP),
		stallP: clamp(stallP),
		stall:  stall,
	}
}

// Strike rolls the seeded dice once: it panics (to be contained by the
// caller's recovery boundary), sleeps past the frame deadline, or returns
// untouched. Safe for concurrent use.
func (s *Storm) Strike() {
	s.mu.Lock()
	u := s.rng.Float64()
	s.mu.Unlock()
	switch {
	case u < s.panicP:
		n := s.panics.Add(1)
		panic(fmt.Sprintf("fault: storm panic #%d", n))
	case u < s.panicP+s.stallP:
		s.stalls.Add(1)
		time.Sleep(s.stall)
	}
}

// Panics and Stalls report how many strikes of each kind have fired.
func (s *Storm) Panics() uint64 { return s.panics.Load() }
func (s *Storm) Stalls() uint64 { return s.stalls.Load() }
