package fault

import (
	"math"
	"math/cmplx"
	"math/rand"

	"sledzig/internal/channel"
	"sledzig/internal/core"
	"sledzig/internal/dsp"
	"sledzig/internal/wifi"
	"sledzig/internal/zigbee"
)

// Truncate keeps only the leading Fraction of the waveform — a capture
// that stopped mid-frame. Fraction outside (0, 1) draws uniformly from
// [0.1, 0.95).
type Truncate struct {
	Fraction float64
}

func (Truncate) Name() string { return "truncate" }

func (t Truncate) Apply(rng *rand.Rand, wave []complex128) []complex128 {
	f := t.Fraction
	if f <= 0 || f >= 1 {
		f = 0.1 + 0.85*rng.Float64()
	}
	n := int(f * float64(len(wave)))
	return wave[:n]
}

// Dropout zeroes Spans random spans of up to SpanLen samples each — ADC
// overruns or AGC gaps.
type Dropout struct {
	Spans   int // default 2
	SpanLen int // default 160
}

func (Dropout) Name() string { return "dropout" }

func (d Dropout) Apply(rng *rand.Rand, wave []complex128) []complex128 {
	spans, spanLen := d.Spans, d.SpanLen
	if spans <= 0 {
		spans = 2
	}
	if spanLen <= 0 {
		spanLen = 160
	}
	for s := 0; s < spans && len(wave) > 0; s++ {
		start := rng.Intn(len(wave))
		end := start + 1 + rng.Intn(spanLen)
		if end > len(wave) {
			end = len(wave)
		}
		for i := start; i < end; i++ {
			wave[i] = 0
		}
	}
	return wave
}

// Clip limits sample magnitude to Factor times the waveform RMS — a
// saturated front end. Factor <= 0 defaults to 1.2.
type Clip struct {
	Factor float64
}

func (Clip) Name() string { return "clip" }

func (c Clip) Apply(_ *rand.Rand, wave []complex128) []complex128 {
	factor := c.Factor
	if factor <= 0 {
		factor = 1.2
	}
	limit := factor * math.Sqrt(dsp.Power(wave))
	if limit == 0 {
		return wave
	}
	for i, v := range wave {
		if a := cmplx.Abs(v); a > limit {
			wave[i] = v * complex(limit/a, 0)
		}
	}
	return wave
}

// Quantize rounds I and Q to a Bits-wide uniform ADC spanning the
// waveform's peak amplitude. Bits <= 0 defaults to 6.
type Quantize struct {
	Bits int
}

func (Quantize) Name() string { return "quantize" }

func (q Quantize) Apply(_ *rand.Rand, wave []complex128) []complex128 {
	b := q.Bits
	if b <= 0 {
		b = 6
	}
	var peak float64
	for _, v := range wave {
		if a := math.Abs(real(v)); a > peak {
			peak = a
		}
		if a := math.Abs(imag(v)); a > peak {
			peak = a
		}
	}
	if peak == 0 {
		return wave
	}
	levels := float64(int(1) << b)
	step := 2 * peak / levels
	quant := func(x float64) float64 {
		return math.Round(x/step) * step
	}
	for i, v := range wave {
		wave[i] = complex(quant(real(v)), quant(imag(v)))
	}
	return wave
}

// Impulse adds Count impulses of Scale times the RMS amplitude at random
// positions with random phase — ignition noise, microwave-oven edges.
type Impulse struct {
	Count int     // default 8
	Scale float64 // default 10
}

func (Impulse) Name() string { return "impulse" }

func (im Impulse) Apply(rng *rand.Rand, wave []complex128) []complex128 {
	count, scale := im.Count, im.Scale
	if count <= 0 {
		count = 8
	}
	if scale <= 0 {
		scale = 10
	}
	if len(wave) == 0 {
		return wave
	}
	amp := scale * math.Sqrt(dsp.Power(wave))
	for k := 0; k < count; k++ {
		i := rng.Intn(len(wave))
		phase := 2 * math.Pi * rng.Float64()
		wave[i] += cmplx.Rect(amp, phase)
	}
	return wave
}

// Burst adds a contiguous wideband noise burst covering Fraction of the
// waveform at PowerDB relative to the signal power — a colliding
// transmission without ZigBee structure.
type Burst struct {
	Fraction float64 // default 0.1
	PowerDB  float64 // default +6 dB over signal power
}

func (Burst) Name() string { return "burst" }

func (b Burst) Apply(rng *rand.Rand, wave []complex128) []complex128 {
	frac, powerDB := b.Fraction, b.PowerDB
	if frac <= 0 || frac > 1 {
		frac = 0.1
	}
	if powerDB == 0 {
		powerDB = 6
	}
	n := int(frac * float64(len(wave)))
	if n == 0 || len(wave) == 0 {
		return wave
	}
	start := rng.Intn(len(wave) - n + 1)
	sigma := math.Sqrt(dsp.Power(wave) * dsp.FromDB(powerDB) / 2)
	for i := start; i < start+n; i++ {
		wave[i] += complex(rng.NormFloat64()*sigma, rng.NormFloat64()*sigma)
	}
	return wave
}

// ZigBeeCollision mixes a real O-QPSK ZigBee frame into the waveform
// mid-frame at the protected channel's offset — the paper's central
// coexistence event, landing on the receiver instead of the ZigBee node.
type ZigBeeCollision struct {
	// Channel selects the overlapped ZigBee channel (default CH2).
	Channel core.ZigBeeChannel
	// PowerDB is the collision power relative to the waveform (default 0).
	PowerDB float64
	// Payload is the ZigBee frame payload length in octets (default 24).
	Payload int
}

func (ZigBeeCollision) Name() string { return "zigbee_collision" }

func (z ZigBeeCollision) Apply(rng *rand.Rand, wave []complex128) []complex128 {
	ch := z.Channel
	if !ch.Valid() {
		ch = core.CH2
	}
	payloadLen := z.Payload
	if payloadLen <= 0 {
		payloadLen = 24
	}
	payload := make([]byte, payloadLen)
	rng.Read(payload)
	// 10 samples per 2 Mchip/s chip lands on the 20 MS/s WiFi bus.
	zb, err := zigbee.Transmitter{SamplesPerChip: int(wifi.SampleRate / zigbee.ChipRate)}.Transmit(payload)
	if err != nil || len(wave) == 0 {
		return wave
	}
	dsp.ScaleToPower(zb, dsp.Power(wave)*dsp.FromDB(z.PowerDB))
	shifted := dsp.FrequencyShift(zb, wifi.SampleRate, ch.OffsetHz())
	delay := rng.Intn(len(wave))
	dsp.MixInto(wave, shifted, 1, delay)
	return wave
}

// CFO rotates the waveform by a carrier frequency offset, stacking on
// whatever offset channel.ApplyCFO already applied upstream. OffsetHz 0
// draws uniformly from ±100 kHz.
type CFO struct {
	OffsetHz float64
}

func (CFO) Name() string { return "cfo" }

func (c CFO) Apply(rng *rand.Rand, wave []complex128) []complex128 {
	off := c.OffsetHz
	if off == 0 {
		off = (rng.Float64() - 0.5) * 2e5
	}
	return channel.ApplyCFO(wave, wifi.SampleRate, off)
}

// SFO resamples the waveform with a sample-clock skew of PPM parts per
// million (linear interpolation) — the transmit and receive ADC clocks
// drifting apart over the frame. PPM 0 draws uniformly from ±100 ppm.
type SFO struct {
	PPM float64
}

func (SFO) Name() string { return "sfo" }

func (s SFO) Apply(rng *rand.Rand, wave []complex128) []complex128 {
	ppm := s.PPM
	if ppm == 0 {
		ppm = (rng.Float64() - 0.5) * 200
	}
	if len(wave) < 2 {
		return wave
	}
	step := 1 + ppm*1e-6
	out := make([]complex128, 0, len(wave))
	for pos := 0.0; ; pos += step {
		i := int(pos)
		if i >= len(wave)-1 {
			break
		}
		frac := complex(pos-float64(i), 0)
		out = append(out, wave[i]*(1-frac)+wave[i+1]*frac)
	}
	return out
}

// IQImbalance applies gain and phase mismatch between the I and Q rails:
// Q is scaled by GainDB and leaks a sin(PhaseDeg) fraction of I.
type IQImbalance struct {
	GainDB   float64 // default 1 dB
	PhaseDeg float64 // default 3 degrees
}

func (IQImbalance) Name() string { return "iq_imbalance" }

func (iq IQImbalance) Apply(_ *rand.Rand, wave []complex128) []complex128 {
	gainDB, phaseDeg := iq.GainDB, iq.PhaseDeg
	if gainDB == 0 && phaseDeg == 0 {
		gainDB, phaseDeg = 1, 3
	}
	g := math.Pow(10, gainDB/20)
	phi := phaseDeg * math.Pi / 180
	sin, cos := math.Sin(phi), math.Cos(phi)
	for i, v := range wave {
		re, im := real(v), imag(v)
		wave[i] = complex(re, g*(im*cos+re*sin))
	}
	return wave
}
