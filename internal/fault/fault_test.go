package fault

import (
	"math/rand"
	"testing"

	"sledzig/internal/core"
	"sledzig/internal/wifi"
)

// testWaveform renders one valid SledZig PPDU for the injectors to damage.
func testWaveform(t *testing.T) []complex128 {
	t.Helper()
	plan, err := core.CachedPlan(wifi.ConventionIEEE, wifi.Mode{Modulation: wifi.QAM16, CodeRate: wifi.Rate12}, core.CH2)
	if err != nil {
		t.Fatalf("CachedPlan: %v", err)
	}
	enc := core.Encoder{Plan: plan}
	res, err := enc.Encode([]byte("fault injection reference payload 0123456789"))
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	wave, err := res.Frame.Waveform()
	if err != nil {
		t.Fatalf("Waveform: %v", err)
	}
	return wave
}

func TestChainIsDeterministic(t *testing.T) {
	wave := testWaveform(t)
	chain := RandomChain(42, 3)
	a := chain.Apply(wave)
	b := chain.Apply(wave)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs between identical chains", i)
		}
	}
}

func TestChainDoesNotMutateInput(t *testing.T) {
	wave := testWaveform(t)
	orig := make([]complex128, len(wave))
	copy(orig, wave)
	Chain{Seed: 7, Injectors: []Injector{Dropout{}, Clip{}, Impulse{}}}.Apply(wave)
	for i := range wave {
		if wave[i] != orig[i] {
			t.Fatalf("Chain.Apply mutated its input at sample %d", i)
		}
	}
}

func TestChainName(t *testing.T) {
	c := Chain{Injectors: []Injector{Clip{}, CFO{}, Truncate{}}}
	if got := c.Name(); got != "clip+cfo+truncate" {
		t.Fatalf("Name() = %q", got)
	}
	if got := (Chain{}).Name(); got != "clean" {
		t.Fatalf("empty chain Name() = %q", got)
	}
}

func TestTruncateShortens(t *testing.T) {
	wave := testWaveform(t)
	rng := rand.New(rand.NewSource(1))
	out := Truncate{Fraction: 0.5}.Apply(rng, append([]complex128(nil), wave...))
	if want := len(wave) / 2; len(out) != want {
		t.Fatalf("truncated to %d, want %d", len(out), want)
	}
}

func TestDropoutZeroesSpans(t *testing.T) {
	wave := testWaveform(t)
	rng := rand.New(rand.NewSource(1))
	out := Dropout{Spans: 3, SpanLen: 100}.Apply(rng, append([]complex128(nil), wave...))
	zeros := 0
	for _, v := range out {
		if v == 0 {
			zeros++
		}
	}
	if zeros == 0 {
		t.Fatal("dropout produced no zeroed samples")
	}
}

func TestClipBoundsMagnitude(t *testing.T) {
	wave := testWaveform(t)
	rng := rand.New(rand.NewSource(1))
	// Spike one sample far above the RMS so there is something to clip.
	wave[100] = complex(100, 100)
	out := Clip{Factor: 1.0}.Apply(rng, wave)
	var rms float64
	for _, v := range out {
		rms += real(v)*real(v) + imag(v)*imag(v)
	}
	if real(out[100]) > 50 {
		t.Fatalf("spike survived clipping: %v", out[100])
	}
}

func TestQuantizeSnapsToGrid(t *testing.T) {
	wave := testWaveform(t)
	rng := rand.New(rand.NewSource(1))
	a := Quantize{Bits: 4}.Apply(rng, append([]complex128(nil), wave...))
	b := Quantize{Bits: 4}.Apply(rng, append([]complex128(nil), a...))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("quantization is not idempotent at sample %d", i)
		}
	}
	changed := false
	for i := range a {
		if a[i] != wave[i] {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("4-bit quantization changed nothing")
	}
}

func TestSFOChangesLength(t *testing.T) {
	wave := testWaveform(t)
	rng := rand.New(rand.NewSource(1))
	out := SFO{PPM: 1000}.Apply(rng, append([]complex128(nil), wave...))
	if len(out) >= len(wave) {
		t.Fatalf("positive skew should shorten: %d -> %d", len(wave), len(out))
	}
}

func TestZigBeeCollisionAddsInBandPower(t *testing.T) {
	wave := testWaveform(t)
	rng := rand.New(rand.NewSource(1))
	out := ZigBeeCollision{PowerDB: 10}.Apply(rng, append([]complex128(nil), wave...))
	diff := false
	for i := range out {
		if out[i] != wave[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("collision changed nothing")
	}
}

// TestSignalCorruptionBreaksDecode verifies the targeted SIGNAL damage
// actually lands: with a third of the SIGNAL symbol's samples negated the
// receiver must reject the frame (and must not panic).
func TestSignalCorruptionBreaksDecode(t *testing.T) {
	wave := testWaveform(t)
	rng := rand.New(rand.NewSource(3))
	out := SignalCorruption{Samples: 30}.Apply(rng, append([]complex128(nil), wave...))
	_, err := wifi.Receiver{Seed: wifi.DefaultScramblerSeed}.Receive(out)
	if err == nil {
		t.Skip("corruption happened to decode; tighten samples if this recurs")
	}
}

// TestRandomChainsNeverPanic drives the full receive+decode pipeline over
// many random chains — any panic fails the test immediately; errors are the
// expected outcome and are merely counted.
func TestRandomChainsNeverPanic(t *testing.T) {
	wave := testWaveform(t)
	rxr := wifi.Receiver{Seed: wifi.DefaultScramblerSeed}
	dec := core.Decoder{}
	failures := 0
	for seed := int64(0); seed < 50; seed++ {
		chain := RandomChain(seed, 1+int(seed%4))
		out := chain.Apply(wave)
		rx, err := rxr.Receive(out)
		if err != nil {
			failures++
			continue
		}
		if _, _, err := dec.DecodeAuto(rx); err != nil {
			failures++
		}
	}
	t.Logf("%d/50 chains failed decode (failure is the expected outcome)", failures)
}

func TestMismatchedSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		seed := uint8(1 + rng.Intn(127))
		got := MismatchedSeed(rng, seed)
		if got == seed {
			t.Fatalf("MismatchedSeed returned the original seed %d", seed)
		}
		if got < 1 || got > 127 {
			t.Fatalf("seed %d outside [1,127]", got)
		}
	}
}
