package baseline

import (
	"math"
	"testing"

	"sledzig/internal/core"
	"sledzig/internal/wifi"
)

func TestNullSubcarriersSuppressDeeperThanSledZig(t *testing.T) {
	payload := RandomPayload(1, 400)
	cmp, err := Compare(wifi.ConventionPaper,
		wifi.Mode{Modulation: wifi.QAM64, CodeRate: wifi.Rate23}, core.CH4, payload)
	if err != nil {
		t.Fatal(err)
	}
	// Nulling is the suppression upper bound (only leakage remains).
	if cmp.NullDropDB < cmp.SledZigDropDB {
		t.Fatalf("null drop %.1f dB < SledZig drop %.1f dB", cmp.NullDropDB, cmp.SledZigDropDB)
	}
	if cmp.SledZigDropDB < 9 {
		t.Fatalf("SledZig drop %.1f dB too small for QAM-64/CH4", cmp.SledZigDropDB)
	}
	// But its capacity cost is comparable, and it is non-standard.
	if cmp.NullCapacityLoss < cmp.SledZigThroughputLoss-0.02 {
		t.Fatalf("null capacity loss %.3f unexpectedly below SledZig loss %.3f",
			cmp.NullCapacityLoss, cmp.SledZigThroughputLoss)
	}
	if !cmp.SledZigStandard || cmp.NullStandard {
		t.Fatal("standards-compatibility flags wrong")
	}
}

func TestNullSubcarriersErasures(t *testing.T) {
	n := NullSubcarriers{
		Mode:    wifi.Mode{Modulation: wifi.QAM256, CodeRate: wifi.Rate34},
		Channel: core.CH2,
	}
	// 7 data subcarriers x 8 bits: the coded bits a standard receiver
	// would lose per symbol.
	if got := n.ErasedBitsPerSymbol(); got != 56 {
		t.Fatalf("erased bits %d, want 56", got)
	}
	if loss := n.CapacityLossFraction(); math.Abs(loss-7.0/48) > 1e-9 {
		t.Fatalf("capacity loss %.3f", loss)
	}
}

func TestNullWaveformRejectsBadChannel(t *testing.T) {
	n := NullSubcarriers{Mode: wifi.Mode{Modulation: wifi.QAM16, CodeRate: wifi.Rate12}}
	if _, err := n.Waveform([]byte{1, 2, 3}); err == nil {
		t.Fatal("zero channel accepted")
	}
}

func TestGainReductionRangePenalty(t *testing.T) {
	// 6 dB of relief costs half the WiFi range at path-loss exponent 2.
	g := GainReduction{ReliefDB: 6}
	if p := g.WiFiRangePenalty(); math.Abs(p-1.995) > 0.01 {
		t.Fatalf("range penalty %.3f, want ~2", p)
	}
	normal, reduced := g.MaxWiFiRange(20)
	if normal <= reduced {
		t.Fatal("reduced-power range not smaller")
	}
	if math.Abs(normal/reduced-1.995) > 0.01 {
		t.Fatalf("range ratio %.3f, want ~2", normal/reduced)
	}
}

// TestSledZigCheaperThanGainReduction reproduces the paper's motivation
// argument (section III-B): to match SledZig's QAM-256 in-band relief by
// turning the transmit gain down, the WiFi link would give up most of its
// range, while SledZig costs a bounded rate overhead at full range.
func TestSledZigCheaperThanGainReduction(t *testing.T) {
	payload := RandomPayload(2, 400)
	cmp, err := Compare(wifi.ConventionPaper,
		wifi.Mode{Modulation: wifi.QAM256, CodeRate: wifi.Rate34}, core.CH4, payload)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.GainRangeShrink < 4 {
		t.Fatalf("matching %.1f dB by gain reduction should cost >= 4x range, got %.1fx",
			cmp.GainDropDB, cmp.GainRangeShrink)
	}
	if cmp.SledZigThroughputLoss > 0.15 {
		t.Fatalf("SledZig loss %.3f above the paper's 14.58%% bound", cmp.SledZigThroughputLoss)
	}
}
