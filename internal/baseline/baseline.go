// Package baseline implements the two alternatives the SledZig paper
// positions itself against (sections III-B and VI), so the comparison the
// paper makes in prose can be reproduced as numbers:
//
//   - NullSubcarriers is the EmBee-style PHY modification: the transmitter
//     zeroes the subcarriers overlapping the ZigBee channel. It achieves
//     ideal suppression but is incompatible with standard receivers (the
//     nulled subcarriers carry no data, the interleaver-mapped bits on
//     them are simply lost unless the PHY is redesigned).
//   - GainReduction lowers the whole transmit power until the ZigBee
//     channel sees the same relief SledZig provides; the cost is paid as
//     full-band SNR at the WiFi receiver.
package baseline

import (
	"fmt"
	"math/rand"

	"sledzig/internal/bits"
	"sledzig/internal/channel"
	"sledzig/internal/core"
	"sledzig/internal/dsp"
	"sledzig/internal/wifi"
)

// NullSubcarriers renders a frame whose subcarriers inside ch's window are
// forced to zero after standard modulation — the EmBee-style reservation.
// The returned waveform is NOT decodable by a standard 802.11 receiver:
// the bits mapped onto the nulled subcarriers are erased on the air.
type NullSubcarriers struct {
	Mode       wifi.Mode
	Convention wifi.Convention
	Channel    core.ZigBeeChannel
}

// Waveform builds the DATA waveform of a standard frame with the
// overlapped data subcarriers nulled.
func (n NullSubcarriers) Waveform(payload []byte) ([]complex128, error) {
	if !n.Channel.Valid() {
		return nil, fmt.Errorf("baseline: invalid channel %d", int(n.Channel))
	}
	frame, err := wifi.Transmitter{Mode: n.Mode, Convention: n.Convention}.Frame(payload)
	if err != nil {
		return nil, err
	}
	ptsPerSymbol, err := frame.DataPoints()
	if err != nil {
		return nil, err
	}
	nullIdx := map[int]bool{}
	dataIndex := map[int]int{}
	for i, k := range wifi.DataSubcarriers() {
		dataIndex[k] = i
	}
	for _, k := range n.Channel.DataSubcarriers() {
		nullIdx[dataIndex[k]] = true
	}
	out := make([]complex128, 0, len(ptsPerSymbol)*wifi.SymbolLength)
	for s, pts := range ptsPerSymbol {
		mod := make([]complex128, len(pts))
		copy(mod, pts)
		for i := range mod {
			if nullIdx[i] {
				mod[i] = 0
			}
		}
		sym, err := wifi.AssembleSymbol(mod, s+1)
		if err != nil {
			return nil, err
		}
		out = append(out, sym...)
	}
	return out, nil
}

// ErasedBitsPerSymbol counts the coded bits lost on the nulled
// subcarriers: without a PHY redesign these erase 8 subcarriers' worth of
// coded bits per symbol, which is why EmBee needs hardware modification.
func (n NullSubcarriers) ErasedBitsPerSymbol() int {
	return len(n.Channel.DataSubcarriers()) * n.Mode.Modulation.BitsPerSubcarrier()
}

// CapacityLossFraction is the share of data subcarriers sacrificed when
// the PHY is redesigned to skip the nulled subcarriers entirely.
func (n NullSubcarriers) CapacityLossFraction() float64 {
	return float64(len(n.Channel.DataSubcarriers())) / float64(wifi.NumDataSubcarriers)
}

// GainReduction models the "just turn the power down" strawman: the whole
// transmit power drops by ReliefDB so the ZigBee channel sees the same
// in-band relief SledZig would provide.
type GainReduction struct {
	// ReliefDB is the in-band reduction to match (e.g. SledZig's measured
	// drop for a modulation/channel pair).
	ReliefDB float64
}

// WiFiRangePenalty reports the cost: the distance at which the WiFi link
// still meets minSNR shrinks by the returned factor (path-loss exponent
// 2: every 6 dB halves the range).
func (g GainReduction) WiFiRangePenalty() float64 {
	return dsp.FromDB(g.ReliefDB / 2) // amplitude-domain: 10^(dB/20)
}

// MaxWiFiRange returns the largest WiFi link distance (meters) at which a
// mode still decodes, with and without the gain reduction, using the
// calibrated link budget.
func (g GainReduction) MaxWiFiRange(minSNRDB float64) (normal, reduced float64) {
	// Solve WiFiAtWiFiRx(d) - floor = minSNR for d.
	budget := channel.WiFiAtWiFiRxAt0p5mDBm - channel.WiFiRxNoiseFloorDBm - minSNRDB
	normal = 0.5 * dsp.FromDB(budget/2)
	reduced = 0.5 * dsp.FromDB((budget-g.ReliefDB)/2)
	return normal, reduced
}

// Comparison summarizes the three mechanisms for one (mode, channel) pair.
type Comparison struct {
	Mode    wifi.Mode
	Channel core.ZigBeeChannel

	// In-band suppression (dB, measured from waveforms).
	SledZigDropDB float64
	NullDropDB    float64
	GainDropDB    float64 // by construction equal to SledZigDropDB

	// What each costs the WiFi link.
	SledZigThroughputLoss float64 // fraction of data rate
	NullCapacityLoss      float64 // fraction of subcarriers (PHY redesign)
	GainRangeShrink       float64 // WiFi range division factor

	// Standards compatibility.
	SledZigStandard bool // true: plain payload encoding
	NullStandard    bool // false: receiver must know the null map
}

// Compare measures all three mechanisms on real waveforms.
func Compare(conv wifi.Convention, mode wifi.Mode, ch core.ZigBeeChannel, payload []byte) (*Comparison, error) {
	normalFrame, err := wifi.Transmitter{Mode: mode, Convention: conv}.Frame(payload)
	if err != nil {
		return nil, err
	}
	normalWave, err := normalFrame.DataWaveform()
	if err != nil {
		return nil, err
	}
	plan, err := core.NewPlan(conv, mode, ch)
	if err != nil {
		return nil, err
	}
	sledRes, err := (&core.Encoder{Plan: plan}).Encode(payload)
	if err != nil {
		return nil, err
	}
	sledWave, err := sledRes.Frame.DataWaveform()
	if err != nil {
		return nil, err
	}
	nuller := NullSubcarriers{Mode: mode, Convention: conv, Channel: ch}
	nullWave, err := nuller.Waveform(payload)
	if err != nil {
		return nil, err
	}

	lo, hi := ch.BandHz()
	band := func(w []complex128) (float64, error) {
		p, err := dsp.BandPower(w, wifi.SampleRate, lo, hi)
		if err != nil {
			return 0, err
		}
		return dsp.DB(p), nil
	}
	pn, err := band(normalWave)
	if err != nil {
		return nil, err
	}
	ps, err := band(sledWave)
	if err != nil {
		return nil, err
	}
	pz, err := band(nullWave)
	if err != nil {
		return nil, err
	}

	gr := GainReduction{ReliefDB: pn - ps}
	return &Comparison{
		Mode:                  mode,
		Channel:               ch,
		SledZigDropDB:         pn - ps,
		NullDropDB:            pn - pz,
		GainDropDB:            pn - ps,
		SledZigThroughputLoss: plan.ThroughputLossFraction(),
		NullCapacityLoss:      nuller.CapacityLossFraction(),
		GainRangeShrink:       gr.WiFiRangePenalty(),
		SledZigStandard:       true,
		NullStandard:          false,
	}, nil
}

// randomPayload is a convenience for callers without their own data.
func RandomPayload(seed int64, n int) []byte {
	return bits.RandomBytes(newRand(seed), n)
}

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
