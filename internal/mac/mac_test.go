package mac

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"sledzig/internal/channel"
	"sledzig/internal/wifi"
)

// normalProfile mimics the paper's measured in-band power of a normal WiFi
// signal in a pilot-bearing channel: -60 dBm at 1 m, flat across segments.
func normalProfile() WiFiProfile {
	return WiFiProfile{
		PreambleDBm: channel.WiFiBandRSSIAt1mDBm,
		DataDBm:     channel.WiFiBandRSSIAt1mDBm,
		PilotDBm:    math.Inf(-1),
	}
}

// sledzigProfile mimics a QAM-256 CH1-CH3 SledZig signal: payload data
// subcarriers 19.9 dB down, pilot tone dominating the remnant.
func sledzigProfile() WiFiProfile {
	return WiFiProfile{
		PreambleDBm: channel.WiFiBandRSSIAt1mDBm,
		DataDBm:     channel.WiFiBandRSSIAt1mDBm - 19.9,
		PilotDBm:    channel.WiFiBandRSSIAt1mDBm - 9.0,
	}
}

func TestNoWiFiBaselineThroughput(t *testing.T) {
	res, err := Run(Config{
		Seed:      1,
		Duration:  20,
		DWZ:       5,
		DZ:        1,
		DutyRatio: -1, // WiFi silent
	})
	if err != nil {
		t.Fatal(err)
	}
	// The paper's no-interference baseline is ~63 kbit/s; the calibrated
	// per-packet overhead should land within 10%.
	if res.ZigBeeThroughputBps < 55e3 || res.ZigBeeThroughputBps > 72e3 {
		t.Fatalf("baseline ZigBee throughput %.1f kbit/s, want ~63", res.ZigBeeThroughputBps/1e3)
	}
	if res.ZigBeeCorrupted != 0 {
		t.Fatalf("%d corrupted frames without interference", res.ZigBeeCorrupted)
	}
	if res.WiFiFramesSent != 0 {
		t.Fatalf("WiFi sent %d frames while silent", res.WiFiFramesSent)
	}
}

func TestCCABlocksZigBeeNearWiFi(t *testing.T) {
	// At 1 m under continuous normal WiFi, the ZigBee CCA sees ~-60 dBm
	// (far above -77) and nearly every access attempt fails.
	res, err := Run(Config{
		Seed:     2,
		Duration: 10,
		DWZ:      1,
		DZ:       0.5,
		Profile:  normalProfile(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ZigBeeThroughputBps > 10e3 {
		t.Fatalf("ZigBee throughput %.1f kbit/s near a saturated WiFi, want ~0", res.ZigBeeThroughputBps/1e3)
	}
	if res.ZigBeeCCADrops == 0 {
		t.Fatal("expected CCA drops near a saturated WiFi transmitter")
	}
}

func TestZigBeeRecoversOutsideCarrierSenseRange(t *testing.T) {
	// Paper Fig. 14: under normal WiFi the ZigBee link reaches its
	// baseline throughput only around d_WZ >= 8.5 m.
	far, err := Run(Config{Seed: 3, Duration: 15, DWZ: 10, DZ: 1, Profile: normalProfile()})
	if err != nil {
		t.Fatal(err)
	}
	near, err := Run(Config{Seed: 3, Duration: 15, DWZ: 4, DZ: 1, Profile: normalProfile()})
	if err != nil {
		t.Fatal(err)
	}
	if far.ZigBeeThroughputBps < 50e3 {
		t.Fatalf("at 10 m: %.1f kbit/s, want near baseline", far.ZigBeeThroughputBps/1e3)
	}
	if near.ZigBeeThroughputBps > far.ZigBeeThroughputBps/2 {
		t.Fatalf("at 4 m (%.1f kbit/s) should be far below 10 m (%.1f kbit/s)",
			near.ZigBeeThroughputBps/1e3, far.ZigBeeThroughputBps/1e3)
	}
}

func TestSledZigShortensCarrierSenseRange(t *testing.T) {
	// The headline effect: at a distance where normal WiFi silences the
	// ZigBee link, a SledZig (QAM-256-like) profile lets it transmit.
	dwz := 4.5
	normal, err := Run(Config{Seed: 4, Duration: 15, DWZ: dwz, DZ: 1, Profile: normalProfile()})
	if err != nil {
		t.Fatal(err)
	}
	sled, err := Run(Config{Seed: 4, Duration: 15, DWZ: dwz, DZ: 1, Profile: sledzigProfile()})
	if err != nil {
		t.Fatal(err)
	}
	if normal.ZigBeeThroughputBps > 20e3 {
		t.Fatalf("normal WiFi at %.1f m lets ZigBee through (%.1f kbit/s)", dwz, normal.ZigBeeThroughputBps/1e3)
	}
	if sled.ZigBeeThroughputBps < 40e3 {
		t.Fatalf("SledZig at %.1f m: %.1f kbit/s, want a large recovery", dwz, sled.ZigBeeThroughputBps/1e3)
	}
}

func TestDutyRatioControlsWiFiAirtime(t *testing.T) {
	for _, duty := range []float64{0.2, 0.5, 0.9} {
		res, err := Run(Config{Seed: 5, Duration: 20, DWZ: 8, DZ: 1, DutyRatio: duty, Profile: normalProfile()})
		if err != nil {
			t.Fatal(err)
		}
		got := res.WiFiAirtime / res.SimulatedDuration
		if math.Abs(got-duty) > 0.12 {
			t.Errorf("duty %.1f: realized airtime fraction %.2f", duty, got)
		}
	}
}

func TestWiFiUnaffectedByZigBee(t *testing.T) {
	// Paper section V-D2: ZigBee interference at the WiFi receiver sits
	// ~30 dB below the WiFi signal, so no WiFi frames fail.
	res, err := Run(Config{
		Seed: 6, Duration: 10, DWZ: 1, DZ: 0.5, DW: 1,
		Profile:  sledzigProfile(),
		WiFiMode: wifi.Mode{Modulation: wifi.QAM64, CodeRate: wifi.Rate34},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.WiFiFramesFailed != 0 {
		t.Fatalf("%d WiFi frames failed under ZigBee interference, want 0", res.WiFiFramesFailed)
	}
}

func TestRunValidatesConfig(t *testing.T) {
	if _, err := Run(Config{Duration: 1}); err == nil {
		t.Error("zero distances accepted")
	}
	if _, err := Run(Config{Duration: 1, DWZ: 1, DZ: 1}); err == nil {
		t.Error("empty WiFi profile accepted for active WiFi")
	}
}

func TestDeterministicUnderSeed(t *testing.T) {
	cfg := Config{Seed: 7, Duration: 5, DWZ: 5, DZ: 1, Profile: sledzigProfile()}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Fatalf("same seed produced different results:\n%+v\n%+v", a, b)
	}
}

func TestChipErrorProbabilityMonotone(t *testing.T) {
	prev := 0.5
	for _, sinr := range []float64{0.01, 0.1, 1, 10, 100} {
		p := chipErrorProbability(sinr)
		if p >= prev {
			t.Fatalf("chip error probability not decreasing at SINR %g", sinr)
		}
		prev = p
	}
	if p := chipErrorProbability(-1); p != 0.5 {
		t.Fatalf("negative SINR should saturate at 0.5, got %g", p)
	}
}

func TestMultiNodeContention(t *testing.T) {
	// Aggregate throughput grows with a second node (the medium is far
	// from saturated at one node's ~63 kbit/s), and collisions appear.
	one, err := Run(Config{Seed: 8, Duration: 15, DWZ: 8, DZ: 1, DutyRatio: -1, ZigBeeNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	four, err := Run(Config{Seed: 8, Duration: 15, DWZ: 8, DZ: 1, DutyRatio: -1, ZigBeeNodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	if four.ZigBeeThroughputBps < 1.5*one.ZigBeeThroughputBps {
		t.Fatalf("4 nodes: %.1f kbit/s vs 1 node: %.1f kbit/s",
			four.ZigBeeThroughputBps/1e3, one.ZigBeeThroughputBps/1e3)
	}
	// Carrier sense keeps the collision rate low but not zero.
	if four.ZigBeeCollisions == 0 {
		t.Log("no collisions among 4 nodes (possible but unusual)")
	}
	if frac := float64(four.ZigBeeCollisions) / float64(four.ZigBeeSent+1); frac > 0.3 {
		t.Fatalf("collision fraction %.2f too high for CSMA", frac)
	}
}

func TestAcksRecoverLossesViaRetries(t *testing.T) {
	// Geometry where a fraction of frames die to WiFi interference: with
	// ACKs + retries the delivery ratio of unique frames improves.
	cfg := Config{
		Seed: 9, Duration: 15, DWZ: 5.5, DZ: 1.3,
		Profile: normalProfile(), DutyRatio: 1,
		WiFiFrameAirtime: 20e-3, CCAMode: CCACarrierOnly,
	}
	plain, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	acked := cfg
	acked.UseAcks = true
	withAcks, err := Run(acked)
	if err != nil {
		t.Fatal(err)
	}
	if plain.ZigBeeCorrupted == 0 {
		t.Skip("geometry produced no losses; retry benefit unobservable")
	}
	plainRatio := float64(plain.ZigBeeDelivered) / float64(plain.ZigBeeDelivered+plain.ZigBeeCorrupted)
	ackedRatio := float64(withAcks.ZigBeeDelivered) /
		float64(withAcks.ZigBeeDelivered+withAcks.ZigBeeDropped)
	if withAcks.ZigBeeRetries == 0 {
		t.Fatal("no retries recorded despite losses")
	}
	if ackedRatio < plainRatio {
		t.Fatalf("ACK delivery ratio %.2f below plain %.2f", ackedRatio, plainRatio)
	}
}

func TestAcksCostThroughputWhenClean(t *testing.T) {
	// On a clean channel ACKs only add overhead: throughput dips slightly
	// but delivery stays perfect.
	plain, err := Run(Config{Seed: 10, Duration: 15, DWZ: 9, DZ: 1, DutyRatio: -1})
	if err != nil {
		t.Fatal(err)
	}
	acked, err := Run(Config{Seed: 10, Duration: 15, DWZ: 9, DZ: 1, DutyRatio: -1, UseAcks: true})
	if err != nil {
		t.Fatal(err)
	}
	if acked.ZigBeeDropped != 0 || acked.ZigBeeAckFailures != 0 {
		t.Fatalf("clean channel lost frames: %+v", acked)
	}
	if acked.ZigBeeThroughputBps > plain.ZigBeeThroughputBps {
		t.Fatalf("ACKs increased throughput (%.1f vs %.1f)",
			acked.ZigBeeThroughputBps/1e3, plain.ZigBeeThroughputBps/1e3)
	}
	if acked.ZigBeeThroughputBps < 0.85*plain.ZigBeeThroughputBps {
		t.Fatalf("ACK overhead too large: %.1f vs %.1f kbit/s",
			acked.ZigBeeThroughputBps/1e3, plain.ZigBeeThroughputBps/1e3)
	}
}

func TestTraceEventsConsistentWithCounters(t *testing.T) {
	var events []TraceEvent
	cfg := Config{
		Seed: 11, Duration: 5, DWZ: 5, DZ: 1,
		Profile: sledzigProfile(), UseAcks: true,
		Trace: func(ev TraceEvent) { events = append(events, ev) },
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sum := Summarize(events)
	if sum[TraceZBStart] != res.ZigBeeSent {
		t.Fatalf("trace zb_start %d vs sent %d", sum[TraceZBStart], res.ZigBeeSent)
	}
	if sum[TraceZBDelivered] != res.ZigBeeDelivered {
		t.Fatalf("trace delivered %d vs %d", sum[TraceZBDelivered], res.ZigBeeDelivered)
	}
	if sum[TraceWiFiStart] != res.WiFiFramesSent {
		t.Fatalf("trace wifi_start %d vs %d", sum[TraceWiFiStart], res.WiFiFramesSent)
	}
	if sum[TraceCCADrop] != res.ZigBeeCCADrops {
		t.Fatalf("trace cca_drop %d vs %d", sum[TraceCCADrop], res.ZigBeeCCADrops)
	}
	// Events arrive in time order.
	for i := 1; i < len(events); i++ {
		if events[i].At < events[i-1].At {
			t.Fatal("trace events out of order")
		}
	}
}

func TestCSVTracer(t *testing.T) {
	var buf bytes.Buffer
	tracer, flush := CSVTracer(&buf)
	tracer(TraceEvent{At: 1.5, Kind: TraceZBStart, Node: 2})
	if err := flush(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "zb_start") || !strings.Contains(out, "1.5") {
		t.Fatalf("csv output %q", out)
	}
}

func TestLatencyStatistics(t *testing.T) {
	res, err := Run(Config{Seed: 12, Duration: 10, DWZ: 8, DZ: 1, DutyRatio: -1})
	if err != nil {
		t.Fatal(err)
	}
	// Clean channel: latency is backoff + CCA + airtime, well under 10 ms.
	if res.ZigBeeMeanLatency <= 3e-3 || res.ZigBeeMeanLatency > 10e-3 {
		t.Fatalf("mean latency %.2f ms", res.ZigBeeMeanLatency*1e3)
	}
	if res.ZigBeeMaxLatency < res.ZigBeeMeanLatency {
		t.Fatal("max below mean")
	}
	// Under interference with ACK retries, latency grows.
	hard, err := Run(Config{
		Seed: 12, Duration: 10, DWZ: 5.5, DZ: 1.3, Profile: normalProfile(),
		WiFiFrameAirtime: 20e-3, CCAMode: CCACarrierOnly, UseAcks: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if hard.ZigBeeDelivered > 0 && hard.ZigBeeMeanLatency < res.ZigBeeMeanLatency {
		t.Fatalf("latency under interference (%.2f ms) below clean-channel latency (%.2f ms)",
			hard.ZigBeeMeanLatency*1e3, res.ZigBeeMeanLatency*1e3)
	}
}

func TestPeriodicTrafficModel(t *testing.T) {
	// 100 B every 100 ms => 8 kbit/s offered load; the clean channel must
	// deliver essentially all of it, far below saturation.
	res, err := Run(Config{
		Seed: 13, Duration: 20, DWZ: 8, DZ: 1, DutyRatio: -1,
		ZigBeeInterval: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	offered := 8.0 * 100 / 0.1 // bits per second
	if res.ZigBeeThroughputBps < 0.8*offered || res.ZigBeeThroughputBps > 1.3*offered {
		t.Fatalf("periodic throughput %.0f bit/s vs offered %.0f", res.ZigBeeThroughputBps, offered)
	}
	// Saturated traffic delivers far more.
	sat, err := Run(Config{Seed: 13, Duration: 20, DWZ: 8, DZ: 1, DutyRatio: -1})
	if err != nil {
		t.Fatal(err)
	}
	if sat.ZigBeeThroughputBps < 5*res.ZigBeeThroughputBps {
		t.Fatalf("saturated %.1f kbit/s not far above periodic %.1f",
			sat.ZigBeeThroughputBps/1e3, res.ZigBeeThroughputBps/1e3)
	}
}

func TestGoodputFraction(t *testing.T) {
	r := Result{ZigBeeSent: 10, ZigBeeDelivered: 7}
	if g := r.ZigBeeGoodputFraction(); g != 0.7 {
		t.Fatalf("goodput %g", g)
	}
	if g := (Result{}).ZigBeeGoodputFraction(); g != 0 {
		t.Fatalf("empty goodput %g", g)
	}
}

func TestProfileTotals(t *testing.T) {
	p := WiFiProfile{PreambleDBm: -60, DataDBm: -70, PilotDBm: -70}
	// Two equal -70 dBm components sum to ~-67.
	if tot := p.TotalPayloadDBm(); tot < -67.2 || tot > -66.8 {
		t.Fatalf("payload total %g", tot)
	}
	noPilot := WiFiProfile{PreambleDBm: -60, DataDBm: -70, PilotDBm: math.Inf(-1)}
	if tot := noPilot.TotalPayloadDBm(); tot != -70 {
		t.Fatalf("pilot-free total %g", tot)
	}
}

func TestWiFiDutyVeryLow(t *testing.T) {
	res, err := Run(Config{
		Seed: 14, Duration: 20, DWZ: 2, DZ: 0.5,
		Profile: normalProfile(), DutyRatio: 0.05,
		WiFiFrameAirtime: 4e-3, CCAMode: CCACarrierOnly,
	})
	if err != nil {
		t.Fatal(err)
	}
	frac := res.WiFiAirtime / res.SimulatedDuration
	if frac > 0.1 {
		t.Fatalf("realized airtime %.3f for duty 0.05", frac)
	}
	// Almost all of the channel is idle, so ZigBee runs near baseline.
	if res.ZigBeeThroughputBps < 45e3 {
		t.Fatalf("throughput %.1f kbit/s at 5%% WiFi duty", res.ZigBeeThroughputBps/1e3)
	}
}
