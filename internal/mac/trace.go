package mac

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// TraceKind labels a simulator event.
type TraceKind string

// Trace event kinds.
const (
	TraceWiFiStart    TraceKind = "wifi_start"
	TraceWiFiEnd      TraceKind = "wifi_end"
	TraceCCABusy      TraceKind = "cca_busy"
	TraceCCADrop      TraceKind = "cca_drop"
	TraceZBStart      TraceKind = "zb_start"
	TraceZBDelivered  TraceKind = "zb_delivered"
	TraceZBCorrupted  TraceKind = "zb_corrupted"
	TraceZBCollided   TraceKind = "zb_collided"
	TraceZBRetry      TraceKind = "zb_retry"
	TraceZBDropped    TraceKind = "zb_dropped"
	TraceZBAckFailure TraceKind = "zb_ack_failure"
)

// TraceEvent is one timestamped simulator occurrence.
type TraceEvent struct {
	At   float64 // simulated seconds
	Kind TraceKind
	Node int // ZigBee node, -1 for WiFi events
}

// Tracer receives simulator events as they happen. Implementations must
// be fast; the simulator calls them inline.
type Tracer func(TraceEvent)

// CSVTracer writes events to w as "t,kind,node" rows; call the returned
// flush when the simulation completes.
func CSVTracer(w io.Writer) (Tracer, func() error) {
	cw := csv.NewWriter(w)
	_ = cw.Write([]string{"t", "kind", "node"})
	tracer := func(ev TraceEvent) {
		_ = cw.Write([]string{
			strconv.FormatFloat(ev.At, 'f', 9, 64),
			string(ev.Kind),
			strconv.Itoa(ev.Node),
		})
	}
	return tracer, func() error {
		cw.Flush()
		return cw.Error()
	}
}

// trace emits an event when a tracer is configured.
func (s *Sim) trace(at float64, kind TraceKind, node int) {
	if s.cfg.Trace != nil {
		s.cfg.Trace(TraceEvent{At: at, Kind: kind, Node: node})
	}
}

// Summarize tallies a trace by kind (a convenience for tests and tools).
func Summarize(events []TraceEvent) map[TraceKind]int {
	out := make(map[TraceKind]int)
	for _, ev := range events {
		out[ev.Kind]++
	}
	return out
}

// String renders an event compactly.
func (ev TraceEvent) String() string {
	return fmt.Sprintf("%.6f %s node=%d", ev.At, ev.Kind, ev.Node)
}
