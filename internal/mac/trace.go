package mac

import (
	"fmt"
	"io"

	"sledzig/internal/obs"
)

// TraceKind labels a simulator event.
type TraceKind string

// Trace event kinds.
const (
	TraceWiFiStart    TraceKind = "wifi_start"
	TraceWiFiEnd      TraceKind = "wifi_end"
	TraceCCABusy      TraceKind = "cca_busy"
	TraceCCADrop      TraceKind = "cca_drop"
	TraceZBStart      TraceKind = "zb_start"
	TraceZBDelivered  TraceKind = "zb_delivered"
	TraceZBCorrupted  TraceKind = "zb_corrupted"
	TraceZBCollided   TraceKind = "zb_collided"
	TraceZBRetry      TraceKind = "zb_retry"
	TraceZBDropped    TraceKind = "zb_dropped"
	TraceZBAckFailure TraceKind = "zb_ack_failure"
)

// TraceEvent is one timestamped simulator occurrence.
type TraceEvent struct {
	At   float64 // simulated seconds
	Kind TraceKind
	Node int // ZigBee node, -1 for WiFi events
}

// Event converts to the pipeline-wide obs event type, which is what all
// non-CSV sinks consume.
func (ev TraceEvent) Event() obs.Event {
	return obs.Event{Time: ev.At, Source: "mac", Kind: string(ev.Kind), Node: ev.Node}
}

// Tracer receives simulator events as they happen. Implementations must
// be fast; the simulator calls them inline.
type Tracer func(TraceEvent)

// CSVTracer writes events to w as "t,source,kind,node,detail" rows (the
// pipeline-wide obs CSV schema, source "mac"); call the returned
// flush when the simulation completes. Any write error — including ones
// hit mid-trace — surfaces from flush (the underlying obs.CSVSink keeps
// the first error sticky and stops writing after it).
func CSVTracer(w io.Writer) (Tracer, func() error) {
	sink := obs.NewCSVSink(w)
	tracer := func(ev TraceEvent) { sink.Emit(ev.Event()) }
	return tracer, sink.Flush
}

// JSONLTracer writes events to w as one JSON object per line, in the
// pipeline-wide obs.Event schema; call the returned flush to surface the
// first write error.
func JSONLTracer(w io.Writer) (Tracer, func() error) {
	sink := obs.NewJSONLSink(w)
	tracer := func(ev TraceEvent) { sink.Emit(ev.Event()) }
	return tracer, sink.Flush
}

// BusTracer bridges simulator events onto an obs event bus, where they
// mix with decode failures and impairment events from the rest of the
// pipeline. A nil bus yields a no-op tracer.
func BusTracer(bus *obs.Bus) Tracer {
	return func(ev TraceEvent) { bus.Publish(ev.Event()) }
}

// macMetrics pre-resolves one counter per event kind so the simulator's
// trace path never builds metric names inline.
type macMetrics struct {
	counters map[TraceKind]*obs.Counter
	bus      *obs.Bus
}

var macLazy obs.Lazy[*macMetrics]

var macNil = &macMetrics{}

func simMetrics() *macMetrics {
	return macLazy.Get(func(r *obs.Registry) *macMetrics {
		if r == nil {
			return macNil
		}
		kinds := []TraceKind{
			TraceWiFiStart, TraceWiFiEnd, TraceCCABusy, TraceCCADrop,
			TraceZBStart, TraceZBDelivered, TraceZBCorrupted, TraceZBCollided,
			TraceZBRetry, TraceZBDropped, TraceZBAckFailure,
		}
		m := &macMetrics{counters: make(map[TraceKind]*obs.Counter, len(kinds)), bus: r.Bus()}
		for _, k := range kinds {
			//sledvet:ignore metriclit event kinds are a closed lowercase set defined next to EventKind
			m.counters[k] = r.Counter("mac.events." + string(k))
		}
		return m
	})
}

// trace emits an event to the configured tracer and, when observability
// is on, to the process-wide event bus and the per-kind counters.
func (s *Sim) trace(at float64, kind TraceKind, node int) {
	if s.cfg.Trace != nil {
		s.cfg.Trace(TraceEvent{At: at, Kind: kind, Node: node})
	}
	m := simMetrics()
	m.counters[kind].Inc()
	if m.bus.Active() {
		m.bus.Publish(obs.Event{Time: at, Source: "mac", Kind: string(kind), Node: node})
	}
}

// Summarize tallies a trace by kind (a convenience for tests and tools).
func Summarize(events []TraceEvent) map[TraceKind]int {
	out := make(map[TraceKind]int)
	for _, ev := range events {
		out[ev.Kind]++
	}
	return out
}

// String renders an event compactly.
func (ev TraceEvent) String() string {
	return fmt.Sprintf("%.6f %s node=%d", ev.At, ev.Kind, ev.Node)
}
