package mac

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"

	"sledzig/internal/channel"
	"sledzig/internal/dsp"
	"sledzig/internal/obs"
	"sledzig/internal/wifi"
	"sledzig/internal/zigbee"
)

// MAC timing constants the paper contrasts (section II-B).
const (
	// WiFiDIFS and WiFiSlot are the 802.11g values the paper cites.
	WiFiDIFS = 28e-6
	WiFiSlot = 9e-6
	// WiFiCWMin backoff slots (CWmin = 15).
	WiFiCWMin = 15

	// ZigBeeBackoffPeriod is aUnitBackoffPeriod (20 symbols = 320 us).
	ZigBeeBackoffPeriod = 320e-6
	// ZigBeeCCADuration is the 8-symbol energy-detect window (128 us).
	ZigBeeCCADuration = 128e-6
	// ZigBee CSMA-CA parameters (802.15.4 defaults).
	zigbeeMinBE          = 3
	zigbeeMaxBE          = 5
	zigbeeMaxCSMARetries = 4
)

// Config parameterizes one coexistence run. Distances follow the paper's
// Fig. 10: the ZigBee receiver sits d_WZ meters from the WiFi transmitter
// and the ZigBee transmitter d_Z meters from its receiver (perpendicular
// to the WiFi path, so the WiFi->ZigBeeTx distance is sqrt(dWZ^2+dZ^2)).
type Config struct {
	Seed     int64
	Duration float64 // simulated seconds

	// Geometry (meters).
	DWZ float64 // WiFi Tx to ZigBee Rx
	DZ  float64 // ZigBee Tx to ZigBee Rx
	DW  float64 // WiFi Tx to WiFi Rx

	// WiFi traffic.
	Profile     WiFiProfile
	WiFiMode    wifi.Mode
	WiFiPayload int     // PSDU octets per PPDU
	DutyRatio   float64 // target airtime fraction; >= 1 means saturated
	WiFiTxGain  int     // USRP gain steps relative to the calibration anchor
	// WiFiFrameAirtime overrides the per-PPDU airtime. The paper's USRP
	// transmitter streams long payload bursts (one preamble per burst);
	// setting several milliseconds here reproduces that traffic shape.
	// Zero derives the airtime from WiFiMode and WiFiPayload.
	WiFiFrameAirtime float64
	// ZigBee traffic.
	ZigBeePayload      int
	ZigBeeTxGain       int
	ProcessingOverhead float64 // per-packet host-side delay (TelosB serial path)
	// ZigBeeNodes is the number of ZigBee transmitters contending for the
	// same receiver (default 1, the paper's setup). Nodes share the link
	// geometry and hear each other's carriers, so they also collide.
	ZigBeeNodes int
	// UseAcks enables 802.15.4 immediate acknowledgments with up to
	// MaxFrameRetries retransmissions; delivery then means "ACK received".
	UseAcks bool
	// MaxFrameRetries bounds retransmissions when UseAcks is set
	// (macMaxFrameRetries, default 3).
	MaxFrameRetries int
	// ZigBeeInterval switches the traffic model from saturated (0) to
	// periodic reporting: each node generates one frame every Interval
	// seconds (jittered), idling in between — the duty cycle of real
	// sensor fleets.
	ZigBeeInterval float64

	// Reception model.
	PilotSuppressionDB float64 // DSSS tone rejection applied to the pilot remnant
	// WidebandSuppressionDB is the despreading correlation advantage
	// against wideband (OFDM-shaped) interference, applied when decoding
	// but not to energy-detect CCA.
	WidebandSuppressionDB float64
	CCAThresholdDBm       float64 // ZigBee energy-detect threshold
	// CCAMode selects the CC2420 clear-channel behaviour (see CCAMode).
	CCAMode CCAMode

	// Trace, when set, receives every simulator event (see Tracer).
	Trace Tracer
}

// CCAMode selects how the ZigBee transmitter's clear-channel assessment
// treats non-802.15.4 energy. The CC2420 supports both behaviours; which
// one a testbed exhibits depends on its CCA_MODE register.
type CCAMode int

const (
	// CCAEnergy flags the channel busy when in-band energy exceeds the
	// threshold regardless of its origin — the behaviour behind the
	// paper's carrier-sense-range analysis (Figs. 4a, 14).
	CCAEnergy CCAMode = iota
	// CCACarrierOnly ignores non-802.15.4 energy: only a decodable ZigBee
	// carrier blocks access. The paper's Fig. 16 data (concurrent ZigBee
	// transmissions at d_WZ = 1 m, where the WiFi energy is far above any
	// plausible threshold) implies this behaviour on its TelosB nodes.
	CCACarrierOnly
)

// Defaults fills zero-valued fields with the paper's experimental setup.
func (c Config) withDefaults() Config {
	if c.Duration == 0 {
		c.Duration = 10
	}
	if c.DW == 0 {
		c.DW = 1
	}
	if c.WiFiPayload == 0 {
		c.WiFiPayload = 1500
	}
	if c.WiFiMode.Modulation == 0 {
		c.WiFiMode = wifi.Mode{Modulation: wifi.QAM16, CodeRate: wifi.Rate12}
	}
	if c.DutyRatio == 0 {
		c.DutyRatio = 1
	}
	if c.WiFiTxGain == 0 {
		c.WiFiTxGain = channel.WiFiReferenceGain
	}
	if c.ZigBeePayload == 0 {
		c.ZigBeePayload = 100
	}
	if c.ZigBeeTxGain == 0 {
		c.ZigBeeTxGain = 31
	}
	if c.ProcessingOverhead == 0 {
		c.ProcessingOverhead = 7.9e-3
	}
	if c.PilotSuppressionDB == 0 {
		c.PilotSuppressionDB = 9
	}
	if c.WidebandSuppressionDB == 0 {
		c.WidebandSuppressionDB = 5
	}
	if c.WiFiFrameAirtime == 0 {
		c.WiFiFrameAirtime = wifi.PPDUDuration(c.WiFiMode, c.WiFiPayload)
	}
	if c.CCAThresholdDBm == 0 {
		c.CCAThresholdDBm = channel.ZigBeeCCAThresholdDBm
	}
	if c.Profile.PilotDBm == 0 {
		// A 0 dBm pilot is physically implausible here; the zero value
		// means "no pilot component".
		c.Profile.PilotDBm = math.Inf(-1)
	}
	if c.ZigBeeNodes == 0 {
		c.ZigBeeNodes = 1
	}
	if c.MaxFrameRetries == 0 {
		c.MaxFrameRetries = 3
	}
	return c
}

// Result aggregates one run.
type Result struct {
	// ZigBee side.
	ZigBeeThroughputBps float64
	ZigBeeSent          int // frames put on air (including retransmissions)
	ZigBeeDelivered     int // unique frames received (ACKed when UseAcks)
	ZigBeeCorrupted     int // on-air frames lost to interference
	ZigBeeCCADrops      int // frames abandoned after macMaxCSMABackoffs
	ZigBeeCollisions    int // frames lost to ZigBee-ZigBee collisions
	ZigBeeRetries       int // retransmission attempts (UseAcks)
	ZigBeeAckFailures   int // data delivered but ACK lost (UseAcks)
	ZigBeeDropped       int // frames abandoned after MaxFrameRetries
	// ZigBeeMeanLatency and ZigBeeMaxLatency measure MAC service time of
	// delivered frames (seconds from packet creation to confirmed
	// delivery, including backoffs, CCA, retries and the ACK exchange).
	ZigBeeMeanLatency float64
	ZigBeeMaxLatency  float64
	// WiFi side.
	WiFiFramesSent    int
	WiFiAirtime       float64
	WiFiFramesFailed  int // corrupted by ZigBee interference at the WiFi Rx
	SimulatedDuration float64
}

// ZigBeeGoodputFraction is delivered/sent.
func (r Result) ZigBeeGoodputFraction() float64 {
	if r.ZigBeeSent == 0 {
		return 0
	}
	return float64(r.ZigBeeDelivered) / float64(r.ZigBeeSent)
}

// wifiTx is one WiFi PPDU on the air.
type wifiTx struct {
	start, end  float64
	preambleEnd float64 // end of preamble + SIGNAL (full-power segment)
}

// event queue.
type event struct {
	at   float64
	seq  int
	kind int
	node int // ZigBee node index (unused for WiFi events)
}

const (
	evWiFiStart = iota
	evWiFiEnd
	evZigBeeBackoffDone
	evZigBeeCCADone
	evZigBeeTxEnd
	evZigBeeAckEnd
	evZigBeeAckTimeout
	evZigBeeNextPacket
)

type eventQueue []event

func (q eventQueue) Len() int      { return len(q) }
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q *eventQueue) Push(x any) { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// Sim runs one coexistence scenario.
type Sim struct {
	cfg Config
	rng *rand.Rand

	queue eventQueue
	seq   int

	wifiAirtime float64
	wifiLog     []wifiTx // completed + in-flight WiFi transmissions

	// ZigBee state.
	nodes      []zbState
	zbLog      []zbTx // recent/in-flight ZigBee transmissions (incl. ACKs)
	zbFrameAir float64
	zbChips    int

	latencySum float64
	latencyMax float64

	res Result
}

// zbState is one ZigBee transmitter's CSMA/ARQ state.
type zbState struct {
	nb, be  int
	retries int
	txStart float64
	birth   float64 // when the current packet entered the MAC
	dataOK  bool    // last data frame decoded at the receiver
}

// zbTx is one ZigBee emission on the air.
type zbTx struct {
	node       int
	start, end float64
	ack        bool
	collided   bool
}

// Run executes the simulation and returns aggregate results.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.DWZ <= 0 || cfg.DZ <= 0 {
		return nil, fmt.Errorf("mac: distances must be positive (DWZ=%g, DZ=%g)", cfg.DWZ, cfg.DZ)
	}
	if cfg.DutyRatio > 0 && (cfg.Profile.DataDBm == 0 || cfg.Profile.PreambleDBm == 0) {
		return nil, fmt.Errorf("mac: WiFi profile must set PreambleDBm and DataDBm (got %+v)", cfg.Profile)
	}
	runTimer := obs.Default().Scope("mac.sim").Stage("run")
	tRun := runTimer.Start()
	s := &Sim{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
	}
	s.zbFrameAir = zigbee.FrameAirtime(cfg.ZigBeePayload)
	s.zbChips = (zigbee.PreambleOctets + 2 + cfg.ZigBeePayload + zigbee.FCSLength) * 2 * zigbee.ChipsPerSymbol

	heap.Init(&s.queue)
	if cfg.DutyRatio > 0 {
		s.schedule(s.wifiIdleGap(0), evWiFiStart, 0)
	}
	s.nodes = make([]zbState, cfg.ZigBeeNodes)
	for n := range s.nodes {
		// Stagger the first attempts so nodes don't start phase-locked.
		s.startZigBeePacket(s.rng.Float64()*cfg.ProcessingOverhead, n)
	}

	for s.queue.Len() > 0 {
		ev := heap.Pop(&s.queue).(event)
		if ev.at > cfg.Duration {
			break
		}
		s.dispatch(ev)
	}
	s.res.SimulatedDuration = cfg.Duration
	s.res.WiFiAirtime = s.wifiAirtime
	if s.res.ZigBeeDelivered > 0 {
		s.res.ZigBeeMeanLatency = s.latencySum / float64(s.res.ZigBeeDelivered)
		s.res.ZigBeeMaxLatency = s.latencyMax
	}
	s.res.ZigBeeThroughputBps = float64(8*cfg.ZigBeePayload*s.res.ZigBeeDelivered) / cfg.Duration
	runTimer.Done(tRun, 0)
	if r := obs.Default(); r != nil {
		r.Gauge("mac.sim.last_zb_throughput_bps").Set(s.res.ZigBeeThroughputBps)
		r.Gauge("mac.sim.last_wifi_airtime_fraction").Set(s.wifiAirtime / cfg.Duration)
	}
	return &s.res, nil
}

func (s *Sim) schedule(at float64, kind, node int) {
	s.seq++
	heap.Push(&s.queue, event{at: at, seq: s.seq, kind: kind, node: node})
}

func (s *Sim) dispatch(ev event) {
	switch ev.kind {
	case evWiFiStart:
		s.wifiStart(ev.at)
	case evWiFiEnd:
		s.wifiEnd(ev.at)
	case evZigBeeBackoffDone:
		// CCA occupies the tail of the backoff; model it as an explicit
		// 128 us window ending now + CCADuration.
		s.schedule(ev.at+ZigBeeCCADuration, evZigBeeCCADone, ev.node)
	case evZigBeeCCADone:
		s.zigbeeCCADone(ev.at, ev.node)
	case evZigBeeTxEnd:
		s.zigbeeTxEnd(ev.at, ev.node)
	case evZigBeeAckEnd:
		s.zigbeeAckEnd(ev.at, ev.node)
	case evZigBeeAckTimeout:
		s.zigbeeRetry(ev.at, ev.node)
	case evZigBeeNextPacket:
		s.startZigBeePacket(ev.at, ev.node)
	}
}

// --- WiFi side ---

func (s *Sim) wifiPPDUAirtime() float64 {
	return s.cfg.WiFiFrameAirtime
}

// wifiIdleGap returns the idle time before the next PPDU: contention
// overhead when saturated, stretched to hit the duty-ratio target
// otherwise, with uniform jitter so ZigBee sees varying alignment.
func (s *Sim) wifiIdleGap(_ float64) float64 {
	contention := WiFiDIFS + WiFiSlot*float64(s.rng.Intn(WiFiCWMin+1))
	if s.cfg.DutyRatio >= 1 {
		return contention
	}
	air := s.wifiPPDUAirtime()
	gap := air*(1/s.cfg.DutyRatio-1) - contention
	if gap < 0 {
		gap = 0
	}
	// +/-50% jitter keeps the long-run duty ratio while randomizing
	// packet alignment (the paper's box-plot spread).
	jittered := gap * (0.5 + s.rng.Float64())
	return contention + jittered
}

func (s *Sim) wifiStart(t float64) {
	air := s.wifiPPDUAirtime()
	preamble := float64(wifi.PreambleLength+wifi.SymbolLength) / wifi.SampleRate
	s.wifiLog = append(s.wifiLog, wifiTx{start: t, end: t + air, preambleEnd: t + preamble})
	s.res.WiFiFramesSent++
	s.trace(t, TraceWiFiStart, -1)
	s.schedule(t+air, evWiFiEnd, 0)
}

func (s *Sim) wifiEnd(t float64) {
	s.trace(t, TraceWiFiEnd, -1)
	s.wifiAirtime += s.wifiPPDUAirtime()
	s.evaluateWiFiReception(t)
	s.schedule(t+s.wifiIdleGap(t), evWiFiStart, 0)
	// Prune transmissions that can no longer affect anything (keep 100 ms
	// of history for in-flight ZigBee frames).
	cut := 0
	for cut < len(s.wifiLog) && s.wifiLog[cut].end < t-0.1 {
		cut++
	}
	s.wifiLog = s.wifiLog[cut:]
}

// evaluateWiFiReception checks the just-finished WiFi frame against
// ZigBee interference at the WiFi receiver (paper section V-D2).
func (s *Sim) evaluateWiFiReception(end float64) {
	start := end - s.wifiPPDUAirtime()
	// Overlap with any ZigBee emission?
	overlap := false
	for _, tx := range s.zbLog {
		if tx.start < end && tx.end > start {
			overlap = true
			break
		}
	}
	if !overlap {
		return
	}
	sig := channel.WiFiAtWiFiRxDBm(s.cfg.DW) + float64(s.cfg.WiFiTxGain-channel.WiFiReferenceGain)
	// The ZigBee transmitter sits at (DWZ, DZ); the WiFi receiver at
	// (DW, 0).
	dToRx := math.Hypot(s.cfg.DWZ-s.cfg.DW, s.cfg.DZ)
	interf, err := channel.ZigBeeAtWiFiRxDBm(math.Max(dToRx, 0.1))
	if err != nil {
		return
	}
	sinr := sig - dsp.AddPowersDB(interf, channel.WiFiRxNoiseFloorDBm)
	minSNR := wifiMinSNR(s.cfg.WiFiMode)
	if sinr < minSNR {
		s.res.WiFiFramesFailed++
	}
}

// wifiMinSNR mirrors the paper's Table IV minimum-SNR column, falling
// back to the most robust setting for non-table modes.
func wifiMinSNR(m wifi.Mode) float64 {
	if v, err := wifi.MinSNRForMode(m); err == nil {
		return v
	}
	return 11
}

// --- ZigBee side ---

func (s *Sim) startZigBeePacket(t float64, node int) {
	st := &s.nodes[node]
	st.nb = 0
	st.be = zigbeeMinBE
	st.retries = 0
	st.txStart = -1
	st.birth = t
	s.scheduleZigBeeBackoff(t, node)
	s.pruneZbLog(t)
}

func (s *Sim) scheduleZigBeeBackoff(t float64, node int) {
	delay := float64(s.rng.Intn(1<<s.nodes[node].be)) * ZigBeeBackoffPeriod
	s.schedule(t+delay, evZigBeeBackoffDone, node)
}

func (s *Sim) zigbeeCCADone(t float64, node int) {
	st := &s.nodes[node]
	busy := s.zbCarrierBusy(t-ZigBeeCCADuration, t, node)
	if !busy && s.cfg.CCAMode == CCAEnergy {
		busy = s.ccaBusy(t-ZigBeeCCADuration, t)
	}
	if busy {
		s.trace(t, TraceCCABusy, node)
		st.nb++
		if st.be < zigbeeMaxBE {
			st.be++
		}
		if st.nb > zigbeeMaxCSMARetries {
			s.res.ZigBeeCCADrops++
			s.trace(t, TraceCCADrop, node)
			s.schedule(t+s.nextPacketDelay(), evZigBeeNextPacket, node)
			return
		}
		s.scheduleZigBeeBackoff(t, node)
		return
	}
	st.txStart = t
	s.res.ZigBeeSent++
	s.trace(t, TraceZBStart, node)
	s.appendZbTx(zbTx{node: node, start: t, end: t + s.zbFrameAir})
	s.schedule(t+s.zbFrameAir, evZigBeeTxEnd, node)
}

// nextPacketDelay is the gap to the next frame: the host-side overhead
// for saturated traffic, or the (jittered) reporting interval for
// periodic sensors.
func (s *Sim) nextPacketDelay() float64 {
	if s.cfg.ZigBeeInterval <= 0 {
		return s.cfg.ProcessingOverhead
	}
	return s.cfg.ZigBeeInterval * (0.8 + 0.4*s.rng.Float64())
}

// recordLatency accumulates MAC service-time statistics.
func (s *Sim) recordLatency(d float64) {
	s.latencySum += d
	if d > s.latencyMax {
		s.latencyMax = d
	}
}

// zbCarrierBusy reports another ZigBee emission overlapping the CCA
// window: the nodes sit within meters of each other, so any active
// carrier is far above both the energy and the carrier-sense thresholds.
func (s *Sim) zbCarrierBusy(t0, t1 float64, self int) bool {
	for _, tx := range s.zbLog {
		if tx.node == self && !tx.ack {
			continue
		}
		if tx.end > t0 && tx.start < t1 {
			return true
		}
	}
	return false
}

// appendZbTx logs an emission and flags collisions with anything already
// on the air.
func (s *Sim) appendZbTx(tx zbTx) {
	for i := range s.zbLog {
		other := &s.zbLog[i]
		if other.end > tx.start && other.start < tx.end {
			other.collided = true
			tx.collided = true
			s.res.ZigBeeCollisions++
		}
	}
	s.zbLog = append(s.zbLog, tx)
}

func (s *Sim) pruneZbLog(t float64) {
	cut := 0
	for cut < len(s.zbLog) && s.zbLog[cut].end < t-0.05 {
		cut++
	}
	s.zbLog = s.zbLog[cut:]
}

// findZbTx locates the most recent logged emission for a node.
func (s *Sim) findZbTx(node int, ack bool) *zbTx {
	for i := len(s.zbLog) - 1; i >= 0; i-- {
		if s.zbLog[i].node == node && s.zbLog[i].ack == ack {
			return &s.zbLog[i]
		}
	}
	return nil
}

// ccaBusy measures the peak WiFi in-band power at the ZigBee transmitter
// during the CCA window against the energy-detect threshold.
func (s *Sim) ccaBusy(t0, t1 float64) bool {
	dTx := math.Hypot(s.cfg.DWZ, s.cfg.DZ)
	pl := channel.PathLossDB(dTx, 1) - float64(s.cfg.WiFiTxGain-channel.WiFiReferenceGain)
	for _, tx := range s.wifiLog {
		if tx.end <= t0 || tx.start >= t1 {
			continue
		}
		// Preamble overlap raises the level to the full in-band power;
		// otherwise the payload level applies. The paper notes the 16 us
		// preamble barely moves a 128 us energy average, so weight
		// segments by overlap duration.
		var sum float64
		lo := math.Max(tx.start, t0)
		hi := math.Min(tx.end, t1)
		preHi := math.Min(hi, tx.preambleEnd)
		if preHi > lo {
			sum += (preHi - lo) * dsp.FromDB(s.cfg.Profile.PreambleDBm-pl)
		}
		payLo := math.Max(lo, tx.preambleEnd)
		if hi > payLo {
			sum += (hi - payLo) * dsp.FromDB(s.cfg.Profile.ccaLevelDBm(pl))
		}
		avg := sum / (t1 - t0)
		if dsp.DB(avg) > s.cfg.CCAThresholdDBm {
			return true
		}
	}
	return false
}

// zigbeeTxEnd evaluates the finished ZigBee data frame.
func (s *Sim) zigbeeTxEnd(t float64, node int) {
	st := &s.nodes[node]
	tx := s.findZbTx(node, false)
	collided := tx != nil && tx.collided
	ok := !collided && s.receiveZigBeeBurst(st.txStart, s.zbChips, s.cfg.DZ, s.cfg.DWZ)
	if collided {
		s.trace(t, TraceZBCollided, node)
	} else if !ok {
		s.res.ZigBeeCorrupted++
		s.trace(t, TraceZBCorrupted, node)
	}
	if !s.cfg.UseAcks {
		if ok {
			s.res.ZigBeeDelivered++
			s.trace(t, TraceZBDelivered, node)
			s.recordLatency(t - st.birth)
		}
		st.txStart = -1
		s.schedule(t+s.nextPacketDelay(), evZigBeeNextPacket, node)
		return
	}
	st.dataOK = ok
	if ok {
		// The receiver turns the link around and sends the immediate ACK;
		// it occupies the medium like any ZigBee emission.
		ackStart := t + zigbee.TurnaroundTime
		s.appendZbTx(zbTx{node: node, start: ackStart, end: ackStart + zigbee.AckAirtime, ack: true})
		s.schedule(ackStart+zigbee.AckAirtime, evZigBeeAckEnd, node)
		return
	}
	s.schedule(t+zigbee.AckWaitDuration, evZigBeeAckTimeout, node)
}

// zigbeeAckEnd evaluates the acknowledgment at the original transmitter.
func (s *Sim) zigbeeAckEnd(t float64, node int) {
	st := &s.nodes[node]
	ack := s.findZbTx(node, true)
	ackChips := (zigbee.PreambleOctets + 2 + 3 + zigbee.FCSLength) * 2 * zigbee.ChipsPerSymbol
	// The ACK travels receiver -> transmitter over the same d_Z link; the
	// WiFi interferer is hypot(DWZ, DZ) from the transmitter.
	dWiFi := math.Hypot(s.cfg.DWZ, s.cfg.DZ)
	ok := st.dataOK && ack != nil && !ack.collided &&
		s.receiveZigBeeBurst(t-zigbee.AckAirtime, ackChips, s.cfg.DZ, dWiFi)
	if ok {
		s.res.ZigBeeDelivered++
		s.trace(t, TraceZBDelivered, node)
		s.recordLatency(t - st.birth)
		st.txStart = -1
		s.schedule(t+s.nextPacketDelay(), evZigBeeNextPacket, node)
		return
	}
	s.res.ZigBeeAckFailures++
	s.trace(t, TraceZBAckFailure, node)
	s.zigbeeRetry(t, node)
}

// zigbeeRetry re-contends for the channel after a missing or corrupted
// ACK, up to MaxFrameRetries attempts.
func (s *Sim) zigbeeRetry(t float64, node int) {
	st := &s.nodes[node]
	st.retries++
	if st.retries > s.cfg.MaxFrameRetries {
		s.res.ZigBeeDropped++
		s.trace(t, TraceZBDropped, node)
		s.schedule(t+s.nextPacketDelay(), evZigBeeNextPacket, node)
		return
	}
	s.res.ZigBeeRetries++
	s.trace(t, TraceZBRetry, node)
	st.nb = 0
	st.be = zigbeeMinBE
	s.scheduleZigBeeBackoff(t, node)
}

// receiveZigBeeBurst simulates chip-level reception of a burst (data
// frame or ACK): every chip's SINR follows from the WiFi segment active
// at its time; chips flip with the implied error probability and each
// symbol is re-despread against the real chip tables. Any despreading
// error fails the burst (the FCS catches it). linkDist is the ZigBee
// hop's own distance, wifiDist the interferer's distance to the listener.
func (s *Sim) receiveZigBeeBurst(start float64, numChips int, linkDist, wifiDist float64) bool {
	sigDBm, err := channel.ZigBeeRxDBm(linkDist, s.cfg.ZigBeeTxGain)
	if err != nil {
		return false
	}
	sig := dsp.FromDB(sigDBm)
	noise := dsp.FromDB(channel.NoiseFloorDBm)
	pl := channel.PathLossDB(wifiDist, 1) - float64(s.cfg.WiFiTxGain-channel.WiFiReferenceGain)

	chipDur := 1.0 / zigbee.ChipRate
	numSymbols := numChips / zigbee.ChipsPerSymbol
	end := start + float64(numChips)*chipDur
	segs := s.interferenceTimeline(start, end, pl)

	segIdx := 0
	chips := make([]byte, zigbee.ChipsPerSymbol)
	for sym := 0; sym < numSymbols; sym++ {
		symValue := s.rng.Intn(16)
		seq, err := zigbee.ChipSequence(symValue)
		if err != nil {
			return false
		}
		copy(chips, seq)
		symStart := start + float64(sym*zigbee.ChipsPerSymbol)*chipDur
		for c := 0; c < zigbee.ChipsPerSymbol; c++ {
			ct := symStart + (float64(c)+0.5)*chipDur
			for segIdx+1 < len(segs) && ct >= segs[segIdx].end {
				segIdx++
			}
			p := chipErrorProbability(sig / (segs[segIdx].interfMW + noise))
			if p > 0 && s.rng.Float64() < p {
				chips[c] ^= 1
			}
		}
		got, _, err := zigbee.DespreadSymbol(chips)
		if err != nil || got != symValue {
			return false
		}
	}
	return true
}

// interferenceSegment is a span of constant decoding-effective WiFi
// interference at the ZigBee receiver.
type interferenceSegment struct {
	start, end float64
	interfMW   float64
}

// interferenceTimeline flattens the WiFi transmission log into contiguous
// constant-interference segments covering [t0, t1].
func (s *Sim) interferenceTimeline(t0, t1, pathLossDB float64) []interferenceSegment {
	segs := make([]interferenceSegment, 0, 8)
	cursor := t0
	emit := func(end, mw float64) {
		if end <= cursor {
			return
		}
		segs = append(segs, interferenceSegment{start: cursor, end: end, interfMW: mw})
		cursor = end
	}
	pre := s.cfg.Profile.preambleInterferenceMW(pathLossDB, s.cfg.WidebandSuppressionDB)
	pay := s.cfg.Profile.effectiveInterferenceMW(pathLossDB, s.cfg.PilotSuppressionDB, s.cfg.WidebandSuppressionDB)
	for _, tx := range s.wifiLog {
		if tx.end <= cursor || tx.start >= t1 {
			continue
		}
		emit(math.Min(tx.start, t1), 0) // idle gap before this PPDU
		emit(math.Min(math.Min(tx.preambleEnd, tx.end), t1), pre)
		emit(math.Min(tx.end, t1), pay)
		if cursor >= t1 {
			break
		}
	}
	emit(t1, 0)
	return segs
}
