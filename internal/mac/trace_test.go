package mac

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"sledzig/internal/obs"
)

func traceSimConfig(tr Tracer) Config {
	return Config{
		DWZ: 10, DZ: 1, DutyRatio: 0.5, Profile: normalProfile(),
		Duration: 0.5, Seed: 7, Trace: tr,
	}
}

type errAfterWriter struct {
	n   int
	err error
}

func (w *errAfterWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, w.err
	}
	w.n--
	return len(p), nil
}

// TestCSVTracerErrorPropagation is the regression test for the old
// CSVTracer silently swallowing write errors: a writer failing mid-trace
// must surface that error from flush.
func TestCSVTracerErrorPropagation(t *testing.T) {
	wantErr := errors.New("device full")
	tracer, flush := CSVTracer(&errAfterWriter{n: 0, err: wantErr})
	tracer(TraceEvent{At: 0.1, Kind: TraceZBStart, Node: 0})
	if err := flush(); !errors.Is(err, wantErr) {
		t.Fatalf("flush error %v, want %v", err, wantErr)
	}
	// A second flush still reports it (sticky).
	if err := flush(); !errors.Is(err, wantErr) {
		t.Fatalf("flush error not sticky: %v", err)
	}
}

func TestJSONLTracer(t *testing.T) {
	var b strings.Builder
	tracer, flush := JSONLTracer(&b)
	if _, err := Run(traceSimConfig(tracer)); err != nil {
		t.Fatal(err)
	}
	if err := flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) < 2 {
		t.Fatalf("only %d trace lines", len(lines))
	}
	seen := map[string]bool{}
	for _, line := range lines {
		var ev obs.Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line %q: %v", line, err)
		}
		if ev.Source != "mac" {
			t.Fatalf("source %q", ev.Source)
		}
		seen[ev.Kind] = true
	}
	for _, kind := range []string{"wifi_start", "zb_start"} {
		if !seen[kind] {
			t.Errorf("no %q event in JSONL trace (kinds: %v)", kind, seen)
		}
	}
}

// TestBusTracerAndCounters runs the simulator with a registry installed
// and checks that per-kind counters and the event bus agree with the
// Tracer callback.
func TestBusTracerAndCounters(t *testing.T) {
	reg := obs.New()
	obs.SetDefault(reg)
	defer obs.SetDefault(nil)

	ring := obs.NewRingSink(1 << 16)
	defer reg.Bus().Subscribe(ring)()

	var direct []TraceEvent
	res, err := Run(traceSimConfig(func(ev TraceEvent) { direct = append(direct, ev) }))
	if err != nil {
		t.Fatal(err)
	}
	if res.ZigBeeSent == 0 {
		t.Fatal("simulation sent nothing")
	}

	counts := Summarize(direct)
	snap := reg.Snapshot()
	for kind, n := range counts {
		if got := snap.Counters["mac.events."+string(kind)]; got != uint64(n) {
			t.Errorf("counter mac.events.%s = %d, tracer saw %d", kind, got, n)
		}
	}
	busByKind := map[string]int{}
	for _, ev := range ring.Events() {
		if ev.Source == "mac" {
			busByKind[ev.Kind]++
		}
	}
	for kind, n := range counts {
		if busByKind[string(kind)] != n {
			t.Errorf("bus saw %d %s events, tracer saw %d", busByKind[string(kind)], kind, n)
		}
	}
	// Run stage timer and gauges recorded.
	if snap.Counters["mac.sim.run.calls"] == 0 {
		t.Error("mac.sim.run stage not timed")
	}
	if snap.Gauges["mac.sim.last_zb_throughput_bps"] == 0 {
		t.Error("throughput gauge not set")
	}
}

// TestBusTracerNilBus checks the explicit BusTracer constructor tolerates
// a nil bus.
func TestBusTracerNilBus(t *testing.T) {
	tr := BusTracer(nil)
	tr(TraceEvent{Kind: TraceZBStart}) // must not panic
}
