package mac

import (
	"math"
	"math/rand"
	"testing"
)

// TestQfuncErrorBudget sweeps the table-driven Q against the closed form
// across (and beyond) the full argument range the simulator can produce
// and pins the documented error budget.
func TestQfuncErrorBudget(t *testing.T) {
	// Dense uniform sweep over the table's domain, deliberately hitting
	// points between entries.
	const budget = 2e-7
	for i := 0; i <= 400000; i++ {
		x := float64(i) * 2e-5 // [0, 8]
		got, want := qfunc(x), qfuncExact(x)
		if math.Abs(got-want) > budget {
			t.Fatalf("qfunc(%g) = %g, want %g (|err| %g > %g)", x, got, want, math.Abs(got-want), budget)
		}
	}
	// The tail rounds to zero, which errs by at most Q(8).
	for _, x := range []float64{8, 9, 26, 1e6, math.Inf(1)} {
		if got := qfunc(x); got != 0 {
			t.Fatalf("qfunc(%g) = %g, want 0", x, got)
		}
		if want := qfuncExact(8); want > 1e-15 {
			t.Fatalf("tail cutoff too early: Q(8) = %g", want)
		}
	}
	// Negative arguments reflect: Q(-x) = 1 - Q(x).
	for _, x := range []float64{-0.1, -1, -7.5, -100} {
		got, want := qfunc(x), qfuncExact(x)
		if math.Abs(got-want) > budget {
			t.Fatalf("qfunc(%g) = %g, want %g", x, got, want)
		}
	}
	if !math.IsNaN(qfunc(math.NaN())) {
		t.Fatal("qfunc(NaN) is not NaN")
	}
}

// TestChipErrorProbabilityBudget checks the composition actually used by
// the simulator: chipErrorProbability over the SINR range from deep
// interference (-30 dB) to clean (+40 dB) stays within the table budget of
// the closed form.
func TestChipErrorProbabilityBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 200000; i++ {
		sinrDB := -30 + 70*rng.Float64()
		sinr := math.Pow(10, sinrDB/10)
		got := chipErrorProbability(sinr)
		want := 0.5 * math.Erfc(math.Sqrt(2*sinr)/math.Sqrt2)
		if math.Abs(got-want) > 2e-7 {
			t.Fatalf("chipErrorProbability(%g dB) = %g, want %g", sinrDB, got, want)
		}
		if got < 0 || got > 0.5 {
			t.Fatalf("chipErrorProbability(%g dB) = %g out of [0, 0.5]", sinrDB, got)
		}
	}
	// Monotonicity: more SINR can never mean more chip errors. Linear
	// interpolation of a monotone table preserves this by construction;
	// pin it anyway since the despreader model depends on it.
	prev := 0.5
	for i := 0; i <= 10000; i++ {
		sinr := float64(i) * 0.004
		p := chipErrorProbability(sinr)
		if p > prev+1e-12 {
			t.Fatalf("chipErrorProbability not monotone at sinr %g: %g > %g", sinr, p, prev)
		}
		prev = p
	}
}

func BenchmarkQfunc(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += qfunc(float64(i&1023) * 0.0078125)
	}
	_ = sink
}

func BenchmarkQfuncExact(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += qfuncExact(float64(i&1023) * 0.0078125)
	}
	_ = sink
}
