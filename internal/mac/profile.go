// Package mac is a discrete-event coexistence simulator for one WiFi link
// and one ZigBee link sharing spectrum — the substrate for the paper's
// throughput experiments (Figs. 14-16). It models the MAC asymmetry the
// paper describes (WiFi DIFS 28 us / 9 us slots vs ZigBee 128 us CCA /
// 320 us backoff periods), energy-detect CCA against the calibrated
// in-band WiFi power, and chip-level ZigBee reception: each interfered
// chip is flipped with the probability implied by its SINR and the symbol
// is re-despread against the real 802.15.4 chip tables.
package mac

import (
	"math"

	"sledzig/internal/dsp"
)

// WiFiProfile describes the WiFi signal as seen inside one 2 MHz ZigBee
// channel at the 1 m reference distance. The experiment layer derives
// these from actual PHY waveforms (normal vs SledZig payload), so the MAC
// simulator inherits the true per-mode suppression.
type WiFiProfile struct {
	// PreambleDBm is the in-band power of preamble + SIGNAL segments,
	// which SledZig cannot reduce (paper section IV-F).
	PreambleDBm float64
	// DataDBm is the wideband in-band power of payload segments.
	DataDBm float64
	// PilotDBm is the pilot-tone component of payload segments
	// (math.Inf(-1) for CH4 or when folded into DataDBm).
	PilotDBm float64
}

// TotalPayloadDBm returns the combined payload in-band power at 1 m.
func (p WiFiProfile) TotalPayloadDBm() float64 {
	return dsp.AddPowersDB(p.DataDBm, p.PilotDBm)
}

// ccaLevelDBm is the payload power a ZigBee energy detector integrates
// (pilot tone counts at full strength for energy detection — the
// despreader suppression only helps decoding, not CCA).
func (p WiFiProfile) ccaLevelDBm(pathLossDB float64) float64 {
	return p.TotalPayloadDBm() - pathLossDB
}

// effectiveInterferenceMW returns the decoding-effective interference in
// mW during a payload segment at the given path loss: the wideband
// component attenuated by the despreader's correlation advantage and the
// pilot tone by its (stronger) tone suppression.
func (p WiFiProfile) effectiveInterferenceMW(pathLossDB, pilotSuppressionDB, widebandSuppressionDB float64) float64 {
	data := dsp.FromDB(p.DataDBm - pathLossDB - widebandSuppressionDB)
	pilot := 0.0
	if !math.IsInf(p.PilotDBm, -1) {
		pilot = dsp.FromDB(p.PilotDBm - pathLossDB - pilotSuppressionDB)
	}
	return data + pilot
}

// preambleInterferenceMW returns the decoding-effective interference in mW
// during a preamble segment (wideband, so the correlation advantage
// applies).
func (p WiFiProfile) preambleInterferenceMW(pathLossDB, widebandSuppressionDB float64) float64 {
	return dsp.FromDB(p.PreambleDBm - pathLossDB - widebandSuppressionDB)
}

// qfunc is the Gaussian tail probability Q(x).
func qfunc(x float64) float64 {
	return 0.5 * math.Erfc(x/math.Sqrt2)
}

// chipErrorProbability maps a per-chip SINR (linear) to the hard-decision
// chip error probability of coherent O-QPSK, treating interference as
// Gaussian: Q(sqrt(2*SINR)).
func chipErrorProbability(sinr float64) float64 {
	if sinr <= 0 {
		return 0.5
	}
	return qfunc(math.Sqrt(2 * sinr))
}
