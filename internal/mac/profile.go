// Package mac is a discrete-event coexistence simulator for one WiFi link
// and one ZigBee link sharing spectrum — the substrate for the paper's
// throughput experiments (Figs. 14-16). It models the MAC asymmetry the
// paper describes (WiFi DIFS 28 us / 9 us slots vs ZigBee 128 us CCA /
// 320 us backoff periods), energy-detect CCA against the calibrated
// in-band WiFi power, and chip-level ZigBee reception: each interfered
// chip is flipped with the probability implied by its SINR and the symbol
// is re-despread against the real 802.15.4 chip tables.
package mac

import (
	"math"

	"sledzig/internal/dsp"
)

// WiFiProfile describes the WiFi signal as seen inside one 2 MHz ZigBee
// channel at the 1 m reference distance. The experiment layer derives
// these from actual PHY waveforms (normal vs SledZig payload), so the MAC
// simulator inherits the true per-mode suppression.
type WiFiProfile struct {
	// PreambleDBm is the in-band power of preamble + SIGNAL segments,
	// which SledZig cannot reduce (paper section IV-F).
	PreambleDBm float64
	// DataDBm is the wideband in-band power of payload segments.
	DataDBm float64
	// PilotDBm is the pilot-tone component of payload segments
	// (math.Inf(-1) for CH4 or when folded into DataDBm).
	PilotDBm float64
}

// TotalPayloadDBm returns the combined payload in-band power at 1 m.
func (p WiFiProfile) TotalPayloadDBm() float64 {
	return dsp.AddPowersDB(p.DataDBm, p.PilotDBm)
}

// ccaLevelDBm is the payload power a ZigBee energy detector integrates
// (pilot tone counts at full strength for energy detection — the
// despreader suppression only helps decoding, not CCA).
func (p WiFiProfile) ccaLevelDBm(pathLossDB float64) float64 {
	return p.TotalPayloadDBm() - pathLossDB
}

// effectiveInterferenceMW returns the decoding-effective interference in
// mW during a payload segment at the given path loss: the wideband
// component attenuated by the despreader's correlation advantage and the
// pilot tone by its (stronger) tone suppression.
func (p WiFiProfile) effectiveInterferenceMW(pathLossDB, pilotSuppressionDB, widebandSuppressionDB float64) float64 {
	data := dsp.FromDB(p.DataDBm - pathLossDB - widebandSuppressionDB)
	pilot := 0.0
	if !math.IsInf(p.PilotDBm, -1) {
		pilot = dsp.FromDB(p.PilotDBm - pathLossDB - pilotSuppressionDB)
	}
	return data + pilot
}

// preambleInterferenceMW returns the decoding-effective interference in mW
// during a preamble segment (wideband, so the correlation advantage
// applies).
func (p WiFiProfile) preambleInterferenceMW(pathLossDB, widebandSuppressionDB float64) float64 {
	return dsp.FromDB(p.PreambleDBm - pathLossDB - widebandSuppressionDB)
}

// The Gaussian tail probability Q(x) sits inside the simulator's hottest
// loop: every interfered chip of every ZigBee symbol maps SINR to a flip
// probability through it, and math.Erfc dominated SimulateCoexistence
// profiles. qfunc therefore reads a precomputed table with linear
// interpolation instead of calling erfc.
//
// Error budget: entries every 1/512 over [0, 8]. Linear interpolation of a
// C² function errs by at most h²/8·max|Q”|; |Q”(x)| = x·φ(x) peaks at
// 0.242 (x = 1), so the interpolation error is ≤ (1/512)²/8 · 0.242 ≈
// 1.2e-7 absolute — around six digits, where the simulator's own
// Gaussian-interference approximation is good to maybe two. Beyond the
// table Q(8) ≈ 6.2e-16, smaller than one lost chip per universe of
// simulated traffic, so the tail rounds to zero. The property test in
// profile_test.go sweeps the full SINR range against math.Erfc and pins
// this budget.
const (
	qTableMax   = 8.0 // argument where the table ends and the tail rounds to 0
	qTablePerX  = 512 // entries per unit of x
	qTableEntry = 1.0 / qTablePerX
)

var qTable = func() [qTableMax*qTablePerX + 1]float64 {
	var t [qTableMax*qTablePerX + 1]float64
	for i := range t {
		t[i] = 0.5 * math.Erfc(float64(i)*qTableEntry/math.Sqrt2)
	}
	return t
}()

// qfunc is the Gaussian tail probability Q(x), table-driven (see above).
func qfunc(x float64) float64 {
	if math.IsNaN(x) {
		return math.NaN()
	}
	if x < 0 {
		return 1 - qfunc(-x)
	}
	if x >= qTableMax {
		return 0
	}
	t := x * qTablePerX
	i := int(t)
	f := t - float64(i)
	return qTable[i] + f*(qTable[i+1]-qTable[i])
}

// qfuncExact is the closed-form Q(x) the table is checked against.
func qfuncExact(x float64) float64 {
	return 0.5 * math.Erfc(x/math.Sqrt2)
}

// chipErrorProbability maps a per-chip SINR (linear) to the hard-decision
// chip error probability of coherent O-QPSK, treating interference as
// Gaussian: Q(sqrt(2*SINR)).
func chipErrorProbability(sinr float64) float64 {
	if sinr <= 0 {
		return 0.5
	}
	return qfunc(math.Sqrt(2 * sinr))
}
