package sledzig

import "testing"

// benchEncode is the hot path whose instrumentation overhead
// docs/observability.md documents: a full SledZig encode.
func benchEncode(b *testing.B) {
	enc, err := NewEncoder(Config{Modulation: QAM64, CodeRate: Rate34, Channel: CH2})
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 200)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enc.Encode(payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncodeBare measures the encoder with observability off (the
// default): every instrumentation point is a nil check.
func BenchmarkEncodeBare(b *testing.B) {
	SetDefaultMetrics(nil)
	benchEncode(b)
}

// BenchmarkEncodeInstrumented measures the encoder with a registry
// installed, i.e. every stage timer and counter live.
func BenchmarkEncodeInstrumented(b *testing.B) {
	SetDefaultMetrics(NewMetrics())
	defer SetDefaultMetrics(nil)
	benchEncode(b)
}

// BenchmarkDecodeBare / BenchmarkDecodeInstrumented mirror the receive
// side.
func benchDecode(b *testing.B) {
	enc, err := NewEncoder(Config{Modulation: QAM64, CodeRate: Rate34, Channel: CH2})
	if err != nil {
		b.Fatal(err)
	}
	frame, err := enc.Encode(make([]byte, 200))
	if err != nil {
		b.Fatal(err)
	}
	wave, err := frame.Waveform()
	if err != nil {
		b.Fatal(err)
	}
	dec, err := NewDecoder(Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dec.Decode(wave); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeBare(b *testing.B) {
	SetDefaultMetrics(nil)
	benchDecode(b)
}

func BenchmarkDecodeInstrumented(b *testing.B) {
	SetDefaultMetrics(NewMetrics())
	defer SetDefaultMetrics(nil)
	benchDecode(b)
}
