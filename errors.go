package sledzig

import (
	"errors"
	"fmt"

	"sledzig/internal/codec"
	"sledzig/internal/core"
	"sledzig/internal/engine"
	"sledzig/internal/wifi"
)

// Sentinel errors of the public API. Every error returned by NewEncoder,
// NewDecoder, Encode, Decode and the Engine wraps one of these (or is
// a plain internal error for conditions outside this taxonomy), so callers
// classify failures with errors.Is instead of parsing messages:
//
//	res, err := dec.Decode(wave)
//	switch {
//	case errors.Is(err, sledzig.ErrNoProtectedChannel):
//	    // standard WiFi frame — retry with sledzig.AsStandardFrame()
//	case errors.Is(err, sledzig.ErrNoPreamble):
//	    // capture too short / not a PPDU
//	}
var (
	// ErrInvalidChannel marks a Config whose Channel is not CH1..CH4 where
	// one is required (encoding).
	ErrInvalidChannel = errors.New("sledzig: invalid protected channel")
	// ErrInvalidConfig marks a Config field outside its supported range
	// (modulation, code rate, convention or scrambler seed); the wrapped
	// detail names the offending field. Channel problems have their own
	// sentinel, ErrInvalidChannel.
	ErrInvalidConfig = errors.New("sledzig: invalid config")
	// ErrPayloadTooLarge marks a payload outside the encodable range
	// (empty, or beyond the 16-bit length header / PSDU limit).
	ErrPayloadTooLarge = errors.New("sledzig: payload size out of range")
	// ErrNoPreamble marks a waveform too short to contain the 802.11
	// preamble and SIGNAL symbol, or truncated before the PPDU end.
	ErrNoPreamble = errors.New("sledzig: no complete PPDU in waveform")
	// ErrBadSignalField marks an undecodable PLCP SIGNAL field (parity
	// failure, unknown RATE, reserved bit set, zero length).
	ErrBadSignalField = errors.New("sledzig: SIGNAL field undecodable")
	// ErrExtraBitMismatch marks a frame whose extra-bit geometry does not
	// match the detected plan — typically a convention or seed mismatch
	// between transmitter and receiver.
	ErrExtraBitMismatch = errors.New("sledzig: extra-bit layout mismatch")
	// ErrNoProtectedChannel marks a successfully demodulated frame with no
	// SledZig-protected channel in its constellation (a standard frame).
	ErrNoProtectedChannel = errors.New("sledzig: no protected channel detected")
	// ErrDemodulation marks a frame whose SIGNAL field decoded but whose
	// DATA-field demodulation chain failed (channel estimate, equalizer,
	// Viterbi, descrambler or PSDU extraction) — typically severe channel
	// damage rather than a malformed capture.
	ErrDemodulation = errors.New("sledzig: demodulation failed")
	// ErrFramePanicked marks an Engine frame whose worker panicked; the
	// panic was contained and converted into this per-frame error, and the
	// engine keeps running.
	ErrFramePanicked = errors.New("sledzig: frame processing panicked")
	// ErrFrameDeadline marks an Engine frame that exceeded
	// EngineConfig.FrameTimeout; siblings in the same batch proceed.
	ErrFrameDeadline = errors.New("sledzig: frame deadline exceeded")
	// ErrOverloaded marks a frame shed by the Engine's admission control
	// (queue-wait deadline, inflight cap, or abandoned-worker cap) instead
	// of being allowed to stall the caller. Recover the shed reason and
	// queue depth with errors.As into a *sledzig.Overload. Retry after
	// backoff, or steer to another backend.
	ErrOverloaded = errors.New("sledzig: engine overloaded")
	// ErrDraining marks a frame rejected (or handed back un-run) because
	// Engine.Drain is flushing the pool. Terminal for this engine: fail
	// over rather than retry.
	ErrDraining = errors.New("sledzig: engine draining")
	// ErrCircuitOpen marks a frame failed fast because the engine's
	// circuit breaker judged the codec backend unhealthy
	// (EngineConfig.Breaker); the breaker re-probes after its cooldown.
	ErrCircuitOpen = errors.New("sledzig: engine circuit open")
	// ErrEngineClosed marks a submission to an Engine after Close or a
	// completed Drain.
	ErrEngineClosed = errors.New("sledzig: engine closed")
)

// wrapEncodeErr maps internal encoder failures onto the public taxonomy,
// keeping the internal chain intact for %v detail and errors.Is.
func wrapEncodeErr(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, core.ErrPayloadSize) {
		return fmt.Errorf("%w: %w", ErrPayloadTooLarge, err)
	}
	return wrapEngineErr(err)
}

// wrapEngineErr maps engine worker failures (shared by the encode and
// decode paths) onto the public taxonomy.
func wrapEngineErr(err error) error {
	switch {
	case errors.Is(err, engine.ErrFramePanic):
		return fmt.Errorf("%w: %w", ErrFramePanicked, err)
	case errors.Is(err, engine.ErrFrameTimeout):
		return fmt.Errorf("%w: %w", ErrFrameDeadline, err)
	case errors.Is(err, engine.ErrOverloaded):
		return fmt.Errorf("%w: %w", ErrOverloaded, err)
	case errors.Is(err, engine.ErrDraining):
		return fmt.Errorf("%w: %w", ErrDraining, err)
	case errors.Is(err, engine.ErrCircuitOpen):
		return fmt.Errorf("%w: %w", ErrCircuitOpen, err)
	case errors.Is(err, engine.ErrClosed):
		return fmt.Errorf("%w: %w", ErrEngineClosed, err)
	}
	return err
}

// wrapDecodeErr maps internal receive/decode failures onto the public
// taxonomy.
func wrapDecodeErr(err error) error {
	if err == nil {
		return nil
	}
	switch {
	case errors.Is(err, wifi.ErrShortWaveform):
		return fmt.Errorf("%w: %w", ErrNoPreamble, err)
	case errors.Is(err, wifi.ErrBadSignal):
		return fmt.Errorf("%w: %w", ErrBadSignalField, err)
	case errors.Is(err, wifi.ErrDemodFailed):
		return fmt.Errorf("%w: %w", ErrDemodulation, err)
	case errors.Is(err, core.ErrNoProtectedChannel):
		return fmt.Errorf("%w: %w", ErrNoProtectedChannel, err)
	case errors.Is(err, core.ErrExtraBitLayout), errors.Is(err, core.ErrConstraintUnsatisfied):
		return fmt.Errorf("%w: %w", ErrExtraBitMismatch, err)
	case errors.Is(err, codec.ErrDecode):
		return fmt.Errorf("%w: %w", ErrDemodulation, err)
	case errors.Is(err, codec.ErrUnknownCodec):
		return fmt.Errorf("%w: %w", ErrInvalidConfig, err)
	}
	return wrapEngineErr(err)
}
