package sledzig

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncoderDecoderRoundTrip(t *testing.T) {
	for _, conv := range []Convention{ConventionIEEE, ConventionPaper} {
		for _, ch := range []Channel{CH1, CH2, CH3, CH4} {
			enc, err := NewEncoder(Config{
				Modulation: QAM64,
				CodeRate:   Rate34,
				Channel:    ch,
				Convention: conv,
			})
			if err != nil {
				t.Fatal(err)
			}
			payload := []byte("the quick brown fox jumps over the lazy dog 0123456789")
			frame, err := enc.Encode(payload)
			if err != nil {
				t.Fatal(err)
			}
			wave, err := frame.Waveform()
			if err != nil {
				t.Fatal(err)
			}
			dec, err := NewDecoder(Config{Convention: conv})
			if err != nil {
				t.Fatal(err)
			}
			res, err := dec.Decode(wave)
			if err != nil {
				t.Fatalf("%v %v: %v", conv, ch, err)
			}
			if res.Channel != ch {
				t.Fatalf("%v: detected %v, want %v", conv, res.Channel, ch)
			}
			if !bytes.Equal(res.Payload, payload) {
				t.Fatalf("%v %v: payload mismatch", conv, ch)
			}
		}
	}
}

func TestEncoderRequiresChannel(t *testing.T) {
	if _, err := NewEncoder(Config{Modulation: QAM16, CodeRate: Rate12}); err == nil {
		t.Fatal("encoder accepted config without a channel")
	}
}

func TestOverheadMatchesPaperRange(t *testing.T) {
	// The paper's loss spans 6.94%..14.58% across its Table IV settings.
	for _, tc := range []struct {
		mod  Modulation
		rate CodeRate
		ch   Channel
		want float64
	}{
		{QAM16, Rate12, CH1, 14.58},
		{QAM16, Rate34, CH4, 6.94},
		{QAM256, Rate56, CH2, 13.12},
	} {
		enc, err := NewEncoder(Config{Modulation: tc.mod, CodeRate: tc.rate, Channel: tc.ch})
		if err != nil {
			t.Fatal(err)
		}
		if got := 100 * enc.OverheadFraction(); math.Abs(got-tc.want) > 0.01 {
			t.Errorf("%v r=%v %v: overhead %.2f%%, want %.2f%%", tc.mod, tc.rate, tc.ch, got, tc.want)
		}
	}
}

func TestPowerReductionConstants(t *testing.T) {
	if v := PowerReductionDB(QAM64); math.Abs(v-13.2) > 0.05 {
		t.Fatalf("QAM-64 reduction %.2f dB, want 13.2", v)
	}
}

func TestMeasureBandReduction(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	payload := make([]byte, 400)
	rng.Read(payload)
	drop, err := MeasureBandReduction(Config{Modulation: QAM256, CodeRate: Rate34, Channel: CH4}, payload)
	if err != nil {
		t.Fatal(err)
	}
	// CH4 has no pilot, so the measured drop should approach the
	// theoretical 19.3 dB minus spectral leakage.
	if drop < 12 || drop > 21 {
		t.Fatalf("QAM-256 CH4 band reduction %.1f dB, want roughly 13-19", drop)
	}
}

func TestChannelFromNumbers(t *testing.T) {
	ch, err := ChannelFromNumbers(26, 13)
	if err != nil {
		t.Fatal(err)
	}
	if ch != CH4 {
		t.Fatalf("ZigBee 26 on WiFi 13 = %v, want CH4", ch)
	}
}

func TestSimulateCoexistenceSledZigBeatsNormal(t *testing.T) {
	base := CoexistenceConfig{
		Modulation: QAM256,
		CodeRate:   Rate34,
		Channel:    CH3,
		DWZ:        4, DZ: 1, DW: 1,
		DutyRatio: 1, Duration: 8, Seed: 42,
		EnergyCCA: true,
	}
	normal := base
	normal.UseSledZig = false
	sled := base
	sled.UseSledZig = true

	rn, err := SimulateCoexistence(normal)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := SimulateCoexistence(sled)
	if err != nil {
		t.Fatal(err)
	}
	if rs.ZigBeeThroughputBps < 4*rn.ZigBeeThroughputBps+1 {
		t.Fatalf("SledZig %.1f kbit/s vs normal %.1f kbit/s: expected a large win",
			rs.ZigBeeThroughputBps/1e3, rn.ZigBeeThroughputBps/1e3)
	}
	if rs.WiFiGoodputFraction >= 1 || rs.WiFiGoodputFraction < 0.85 {
		t.Fatalf("SledZig WiFi goodput fraction %.3f outside the paper's loss range", rs.WiFiGoodputFraction)
	}
	if rn.InBandRSSIDBm-rs.InBandRSSIDBm < 5 {
		t.Fatalf("in-band RSSI drop %.1f dB too small", rn.InBandRSSIDBm-rs.InBandRSSIDBm)
	}
}

func TestTransmitBitsAreBinary(t *testing.T) {
	enc, err := NewEncoder(Config{Modulation: QAM16, CodeRate: Rate12, Channel: CH2})
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		lr := rand.New(rand.NewSource(seed))
		payload := make([]byte, 1+lr.Intn(64))
		lr.Read(payload)
		frame, err := enc.Encode(payload)
		if err != nil {
			return false
		}
		for _, b := range frame.TransmitBits() {
			if b > 1 {
				return false
			}
		}
		return frame.ExtraBits() == frame.NumSymbols()*enc.ExtraBitsPerSymbol()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestMessageRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	message := make([]byte, 3000)
	rng.Read(message)
	enc, err := NewEncoder(Config{Modulation: QAM64, CodeRate: Rate34, Channel: CH3})
	if err != nil {
		t.Fatal(err)
	}
	frames, err := enc.EncodeMessage(message, 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) < 2 {
		t.Fatalf("expected multiple fragments, got %d", len(frames))
	}
	rx, err := NewMessageReceiver(Config{})
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	for _, f := range frames {
		wave, err := f.Waveform()
		if err != nil {
			t.Fatal(err)
		}
		out, err := rx.Feed(wave)
		if err != nil {
			t.Fatal(err)
		}
		if out != nil {
			got = out
		}
	}
	if !bytes.Equal(got, message) {
		t.Fatal("message mismatch through fragmentation")
	}
	if rx.Pending() != 0 {
		t.Fatalf("%d messages pending", rx.Pending())
	}
}

func TestFacadeAccessors(t *testing.T) {
	enc, err := NewEncoder(Config{Modulation: QAM16, CodeRate: Rate12, Channel: CH1})
	if err != nil {
		t.Fatal(err)
	}
	frame, err := enc.Encode([]byte("accessors"))
	if err != nil {
		t.Fatal(err)
	}
	if d := frame.AirtimeSeconds(); d <= 0 || d > 1e-3 {
		t.Fatalf("airtime %g s", d)
	}
	if mp := enc.MaxPayload(10); mp <= 0 {
		t.Fatalf("MaxPayload(10) = %d", mp)
	}
	// A payload of exactly MaxPayload(3) fits in 3 symbols.
	n := enc.MaxPayload(3)
	f3, err := enc.Encode(make([]byte, n))
	if err != nil {
		t.Fatal(err)
	}
	if f3.NumSymbols() != 3 {
		t.Fatalf("MaxPayload(3) filled %d symbols", f3.NumSymbols())
	}
}

func TestDecodeNormalFrame(t *testing.T) {
	// DecodeNormal reads a plain (non-SledZig) WiFi frame's PSDU.
	enc, err := NewEncoder(Config{Modulation: QAM16, CodeRate: Rate12, Channel: CH2})
	if err != nil {
		t.Fatal(err)
	}
	frame, err := enc.Encode([]byte("payload under the hood"))
	if err != nil {
		t.Fatal(err)
	}
	wave, err := frame.Waveform()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(Config{})
	if err != nil {
		t.Fatal(err)
	}
	psdu, err := dec.DecodeNormal(wave)
	if err != nil {
		t.Fatal(err)
	}
	// The raw PSDU is the SledZig transmit stream, longer than the
	// embedded payload.
	if len(psdu) < len("payload under the hood") {
		t.Fatalf("PSDU of %d octets too short", len(psdu))
	}
}

func mathCos(x float64) float64 { return math.Cos(x) }
func mathSin(x float64) float64 { return math.Sin(x) }

func TestSenseProtectedChannelFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	capture := make([]complex128, 1<<15)
	for i := range capture {
		capture[i] = complex(rng.NormFloat64(), rng.NormFloat64()) * 1e-5
	}
	// Synthesize ZigBee-ish narrowband energy at CH4's offset (+8 MHz).
	for i := range capture {
		phase := 2 * 3.141592653589793 * 8e6 * float64(i) / 20e6
		capture[i] += complex(0.01*mathCos(phase), 0.01*mathSin(phase))
	}
	ch, ok, err := SenseProtectedChannel(capture)
	if err != nil {
		t.Fatal(err)
	}
	if !ok || ch != CH4 {
		t.Fatalf("sensed (%v, %v), want (CH4, true)", ch, ok)
	}
}

// TestEncoderConcurrentUse: one Encoder may serve goroutines concurrently
// (the plan is read-only; per-call state is local).
func TestEncoderConcurrentUse(t *testing.T) {
	enc, err := NewEncoder(Config{Modulation: QAM64, CodeRate: Rate23, Channel: CH1})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(Config{})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			payload := []byte{byte(w), 1, 2, 3, 4, 5, 6, 7}
			for i := 0; i < 10; i++ {
				frame, err := enc.Encode(payload)
				if err != nil {
					errs <- err
					return
				}
				wave, err := frame.Waveform()
				if err != nil {
					errs <- err
					return
				}
				res, err := dec.Decode(wave)
				if err != nil {
					errs <- err
					return
				}
				if got := res.Payload; got[0] != byte(w) {
					errs <- fmt.Errorf("worker %d got %d", w, got[0])
					return
				}
			}
			errs <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
