package sledzig

import (
	"fmt"

	"sledzig/internal/transport"
)

// Message-level API: fragmentation and reassembly over SledZig frames,
// for payloads beyond a single PPDU.

// EncodeMessage fragments message and encodes each fragment as its own
// SledZig frame. fragmentSize bounds the per-frame payload (0 picks 1000
// octets).
func (e *Encoder) EncodeMessage(message []byte, fragmentSize int) ([]*Frame, error) {
	if fragmentSize == 0 {
		fragmentSize = 1000
	}
	frag := &transport.Fragmenter{FragmentSize: fragmentSize}
	parts, err := frag.Split(message)
	if err != nil {
		return nil, err
	}
	frames := make([]*Frame, 0, len(parts))
	for _, p := range parts {
		f, err := e.Encode(p)
		if err != nil {
			return nil, err
		}
		frames = append(frames, f)
	}
	return frames, nil
}

// MessageReceiver reassembles messages from decoded SledZig waveforms.
type MessageReceiver struct {
	dec *Decoder
	re  transport.Reassembler
}

// NewMessageReceiver wires a decoder to a reassembler.
func NewMessageReceiver(cfg Config) (*MessageReceiver, error) {
	dec, err := NewDecoder(cfg)
	if err != nil {
		return nil, err
	}
	return &MessageReceiver{dec: dec}, nil
}

// Feed decodes one PPDU waveform and returns a completed message when the
// final fragment arrives (nil otherwise).
func (m *MessageReceiver) Feed(waveform []complex128) ([]byte, error) {
	res, err := m.dec.Decode(waveform)
	if err != nil {
		return nil, fmt.Errorf("sledzig: fragment decode: %w", err)
	}
	return m.re.Feed(res.Payload)
}

// Pending reports partially received messages.
func (m *MessageReceiver) Pending() int { return m.re.PendingMessages() }
