module sledzig

go 1.22
