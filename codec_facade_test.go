package sledzig

import (
	"bytes"
	"context"
	"errors"
	"testing"
)

// TestCodecsLists checks the public registry view.
func TestCodecsLists(t *testing.T) {
	names := Codecs()
	for _, want := range []string{CodecSledZig, CodecOOK, CodecOfdmFi} {
		found := false
		for _, n := range names {
			found = found || n == want
		}
		if !found {
			t.Fatalf("Codecs() = %v misses %q", names, want)
		}
	}
}

// TestConfigUnknownCodec checks that a mistyped codec name is an
// ErrInvalidConfig everywhere a Config is consumed.
func TestConfigUnknownCodec(t *testing.T) {
	cfg := Config{Channel: CH2, Codec: "nope"}
	if err := cfg.Validate(); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("Validate: %v does not wrap ErrInvalidConfig", err)
	}
	if _, err := NewEncoder(cfg); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("NewEncoder: %v does not wrap ErrInvalidConfig", err)
	}
	if _, err := NewDecoder(cfg); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("NewDecoder: %v does not wrap ErrInvalidConfig", err)
	}
	if _, err := NewEngine(EngineConfig{Config: cfg}); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("NewEngine: %v does not wrap ErrInvalidConfig", err)
	}
}

// TestConstructorsValidateUniformly checks the construction-order
// contract: NewEncoder, NewDecoder and NewEngine all resolve defaults and
// validate, so a bad non-codec field fails identically in all three.
func TestConstructorsValidateUniformly(t *testing.T) {
	cfg := Config{Channel: CH2, ScramblerSeed: 200}
	if _, err := NewEncoder(cfg); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("NewEncoder: %v does not wrap ErrInvalidConfig", err)
	}
	if _, err := NewDecoder(cfg); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("NewDecoder: %v does not wrap ErrInvalidConfig", err)
	}
	if _, err := NewEngine(EngineConfig{Config: cfg}); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("NewEngine: %v does not wrap ErrInvalidConfig", err)
	}
}

// TestGenericCodecNeedsChannel checks that fixed-channel backends reject a
// channel-less config with ErrInvalidChannel from every constructor.
func TestGenericCodecNeedsChannel(t *testing.T) {
	for _, name := range []string{CodecOOK, CodecOfdmFi} {
		cfg := Config{Codec: name}
		if _, err := NewEncoder(cfg); !errors.Is(err, ErrInvalidChannel) {
			t.Fatalf("NewEncoder(%s): %v does not wrap ErrInvalidChannel", name, err)
		}
		if _, err := NewDecoder(cfg); !errors.Is(err, ErrInvalidChannel) {
			t.Fatalf("NewDecoder(%s): %v does not wrap ErrInvalidChannel", name, err)
		}
		if _, err := NewEngine(EngineConfig{Config: cfg}); !errors.Is(err, ErrInvalidChannel) {
			t.Fatalf("NewEngine(%s): %v does not wrap ErrInvalidChannel", name, err)
		}
	}
}

// TestFacadeCodecRoundTrip drives every registered backend through the
// public Encoder/Decoder surface.
func TestFacadeCodecRoundTrip(t *testing.T) {
	for _, name := range Codecs() {
		t.Run(name, func(t *testing.T) {
			cfg := Config{Channel: CH2, Codec: name}
			enc, err := NewEncoder(cfg)
			if err != nil {
				t.Fatalf("NewEncoder: %v", err)
			}
			dec, err := NewDecoder(cfg)
			if err != nil {
				t.Fatalf("NewDecoder: %v", err)
			}
			payload := []byte("facade round trip through " + name)
			frame, err := enc.Encode(payload)
			if err != nil {
				t.Fatalf("Encode: %v", err)
			}
			if frame.Codec() != name {
				t.Fatalf("Frame.Codec() = %q, want %q", frame.Codec(), name)
			}
			if frame.NumSymbols() <= 0 || frame.AirtimeSeconds() <= 0 {
				t.Fatalf("degenerate frame: %d symbols, %g s", frame.NumSymbols(), frame.AirtimeSeconds())
			}
			wave, err := frame.Waveform()
			if err != nil {
				t.Fatalf("Waveform: %v", err)
			}
			res, err := dec.Decode(wave)
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			if !bytes.Equal(res.Payload, payload) {
				t.Fatal("payload mismatch through facade round trip")
			}
			if res.Channel != CH2 {
				t.Fatalf("channel %v, want CH2", res.Channel)
			}
			if res.Codec != name {
				t.Fatalf("DecodeResult.Codec = %q, want %q", res.Codec, name)
			}
		})
	}
}

// TestFrameProtectedSymbols checks the per-backend protection contract
// surfaced on the public Frame.
func TestFrameProtectedSymbols(t *testing.T) {
	payload := []byte("protection mask probe")
	whole, err := NewEncoder(Config{Channel: CH2})
	if err != nil {
		t.Fatal(err)
	}
	f, err := whole.Encode(payload)
	if err != nil {
		t.Fatal(err)
	}
	if mask := f.ProtectedSymbols(); mask != nil {
		t.Fatalf("sledzig frame mask = %v, want nil (whole frame)", mask)
	}
	ook, err := NewEncoder(Config{Channel: CH2, Codec: CodecOOK})
	if err != nil {
		t.Fatal(err)
	}
	f, err = ook.Encode(payload)
	if err != nil {
		t.Fatal(err)
	}
	mask := f.ProtectedSymbols()
	if len(mask) != f.NumSymbols() {
		t.Fatalf("ook mask of %d entries for %d symbols", len(mask), f.NumSymbols())
	}
	lows := 0
	for _, prot := range mask {
		if prot {
			lows++
		}
	}
	if lows == 0 || lows == len(mask) {
		t.Fatalf("ook mask protects %d of %d symbols; want a proper subset", lows, len(mask))
	}
}

// TestDeprecatedWrappersAgree checks the deprecated decode entry points
// still work and preserve errors.Is against the unified Decode.
func TestDeprecatedWrappersAgree(t *testing.T) {
	cfg := Config{Channel: CH3}
	enc, err := NewEncoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("wrapper agreement payload")
	frame, err := enc.Encode(payload)
	if err != nil {
		t.Fatal(err)
	}
	wave, err := frame.Waveform()
	if err != nil {
		t.Fatal(err)
	}

	res, err := dec.Decode(wave)
	if err != nil {
		t.Fatal(err)
	}
	got, ch, err := dec.DecodePayload(wave)
	if err != nil {
		t.Fatalf("DecodePayload: %v", err)
	}
	if !bytes.Equal(got, res.Payload) || ch != res.Channel {
		t.Fatal("DecodePayload disagrees with Decode")
	}
	det, err := dec.DecodeDetailed(wave)
	if err != nil {
		t.Fatalf("DecodeDetailed: %v", err)
	}
	if !bytes.Equal(det.Payload, res.Payload) || det.Codec != res.Codec {
		t.Fatal("DecodeDetailed disagrees with Decode")
	}

	// Error identity must be preserved through every wrapper.
	garbage := make([]complex128, 64)
	_, uerr := dec.Decode(garbage)
	_, _, werr := dec.DecodePayload(garbage)
	_, nerr := dec.DecodeNormal(garbage)
	for _, e := range []error{uerr, werr, nerr} {
		if !errors.Is(e, ErrNoPreamble) {
			t.Fatalf("short-capture error %v does not wrap ErrNoPreamble", e)
		}
	}
}

// TestDecodeAsStandardFrame checks the option path: the same capture
// decodes as a raw PSDU with codec stages skipped.
func TestDecodeAsStandardFrame(t *testing.T) {
	cfg := Config{Channel: CH1}
	enc, err := NewEncoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	frame, err := enc.Encode([]byte("standard-frame option probe"))
	if err != nil {
		t.Fatal(err)
	}
	wave, err := frame.Waveform()
	if err != nil {
		t.Fatal(err)
	}
	res, err := dec.Decode(wave, AsStandardFrame())
	if err != nil {
		t.Fatalf("Decode(AsStandardFrame): %v", err)
	}
	if res.Codec != "" || res.Channel != 0 {
		t.Fatalf("standard decode reported codec %q channel %v; want raw PSDU view", res.Codec, res.Channel)
	}
	normal, err := dec.DecodeNormal(wave)
	if err != nil {
		t.Fatalf("DecodeNormal: %v", err)
	}
	if !bytes.Equal(normal, res.Payload) {
		t.Fatal("DecodeNormal disagrees with Decode(AsStandardFrame)")
	}
}

// TestEngineGenericCodec runs batch encode/decode through the pool with a
// non-default backend selected by Config.Codec.
func TestEngineGenericCodec(t *testing.T) {
	for _, name := range []string{CodecOOK, CodecOfdmFi} {
		t.Run(name, func(t *testing.T) {
			eng, err := NewEngine(EngineConfig{Config: Config{Channel: CH2, Codec: name}, Workers: 2})
			if err != nil {
				t.Fatalf("NewEngine: %v", err)
			}
			defer eng.Close()
			payloads := [][]byte{
				[]byte("engine batch frame zero"),
				[]byte("engine batch frame one is longer"),
				[]byte("f2"),
			}
			frames, err := eng.EncodeBatch(context.Background(), payloads)
			if err != nil {
				t.Fatalf("EncodeBatch: %v", err)
			}
			waves := make([][]complex128, len(frames))
			for i, f := range frames {
				if f.Codec() != name {
					t.Fatalf("frame %d codec %q, want %q", i, f.Codec(), name)
				}
				if waves[i], err = f.Waveform(); err != nil {
					t.Fatalf("Waveform %d: %v", i, err)
				}
			}
			results, err := eng.DecodeBatch(context.Background(), waves)
			if err != nil {
				t.Fatalf("DecodeBatch: %v", err)
			}
			for i, r := range results {
				if !bytes.Equal(r.Payload, payloads[i]) {
					t.Fatalf("frame %d payload mismatch", i)
				}
				if r.Codec != name || r.Channel != CH2 {
					t.Fatalf("frame %d reported codec %q channel %v", i, r.Codec, r.Channel)
				}
			}
		})
	}
}
