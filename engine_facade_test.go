package sledzig

import (
	"context"
	"testing"
)

func TestEngineEncodeBatchMatchesEncoder(t *testing.T) {
	cfg := Config{Modulation: QAM64, CodeRate: Rate34, Channel: CH2}
	eng, err := NewEngine(EngineConfig{Config: cfg, Workers: 4})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	defer eng.Close()
	enc, err := NewEncoder(cfg)
	if err != nil {
		t.Fatalf("NewEncoder: %v", err)
	}

	payloads := make([][]byte, 10)
	for i := range payloads {
		p := make([]byte, 60+17*i)
		for j := range p {
			p[j] = byte(i ^ j)
		}
		payloads[i] = p
	}
	frames, err := eng.EncodeBatch(context.Background(), payloads)
	if err != nil {
		t.Fatalf("EncodeBatch: %v", err)
	}
	for i, p := range payloads {
		want, err := enc.Encode(p)
		if err != nil {
			t.Fatalf("Encode %d: %v", i, err)
		}
		wantWave, err := want.Waveform()
		if err != nil {
			t.Fatalf("Waveform %d: %v", i, err)
		}
		gotWave, err := frames[i].Waveform()
		if err != nil {
			t.Fatalf("batch Waveform %d: %v", i, err)
		}
		if len(wantWave) != len(gotWave) {
			t.Fatalf("payload %d: waveform lengths differ (%d vs %d)", i, len(gotWave), len(wantWave))
		}
		for s := range wantWave {
			if wantWave[s] != gotWave[s] {
				t.Fatalf("payload %d: batch waveform diverges from sequential at sample %d", i, s)
			}
		}
	}
}

func TestEngineStreamRoundTrip(t *testing.T) {
	eng, err := NewEngine(EngineConfig{Config: Config{Channel: CH1}, Workers: 2})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	defer eng.Close()
	dec, err := NewDecoder(Config{})
	if err != nil {
		t.Fatalf("NewDecoder: %v", err)
	}

	payloads := make([][]byte, 8)
	for i := range payloads {
		p := make([]byte, 30+i)
		for j := range p {
			p[j] = byte(3*i + j)
		}
		payloads[i] = p
	}
	in := make(chan []byte)
	go func() {
		defer close(in)
		for _, p := range payloads {
			in <- p
		}
	}()
	delivered := 0
	for sf := range eng.Stream(context.Background(), in) {
		if sf.Err != nil {
			t.Fatalf("stream frame %d: %v", sf.Index, sf.Err)
		}
		wave, err := sf.Frame.Waveform()
		if err != nil {
			t.Fatalf("Waveform %d: %v", sf.Index, err)
		}
		res, err := dec.Decode(wave)
		if err != nil {
			t.Fatalf("Decode %d: %v", sf.Index, err)
		}
		if res.Channel != CH1 {
			t.Fatalf("frame %d: detected %v, want CH1", sf.Index, res.Channel)
		}
		got, want := res.Payload, payloads[sf.Index]
		if len(got) != len(want) {
			t.Fatalf("frame %d: payload length %d != %d", sf.Index, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("frame %d: payload diverges at %d", sf.Index, j)
			}
		}
		delivered++
	}
	if delivered != len(payloads) {
		t.Fatalf("delivered %d of %d frames", delivered, len(payloads))
	}
}

func TestEngineDecodeBatchMatchesDecodeDetailed(t *testing.T) {
	cfg := Config{Modulation: QAM64, CodeRate: Rate34, Channel: CH2}
	eng, err := NewEngine(EngineConfig{Config: cfg, Workers: 4})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	defer eng.Close()
	dec, err := NewDecoder(Config{})
	if err != nil {
		t.Fatalf("NewDecoder: %v", err)
	}

	payloads := make([][]byte, 10)
	for i := range payloads {
		p := make([]byte, 60+17*i)
		for j := range p {
			p[j] = byte(i ^ j)
		}
		payloads[i] = p
	}
	frames, err := eng.EncodeBatch(context.Background(), payloads)
	if err != nil {
		t.Fatalf("EncodeBatch: %v", err)
	}
	waves := make([][]complex128, len(frames))
	for i, f := range frames {
		waves[i], err = f.Waveform()
		if err != nil {
			t.Fatalf("Waveform %d: %v", i, err)
		}
	}
	results, err := eng.DecodeBatch(context.Background(), waves)
	if err != nil {
		t.Fatalf("DecodeBatch: %v", err)
	}
	for i, w := range waves {
		want, err := dec.DecodeDetailed(w)
		if err != nil {
			t.Fatalf("DecodeDetailed %d: %v", i, err)
		}
		got := results[i]
		if string(got.Payload) != string(want.Payload) {
			t.Fatalf("waveform %d: payload differs from DecodeDetailed", i)
		}
		if string(got.Payload) != string(payloads[i]) {
			t.Fatalf("waveform %d: payload does not round-trip", i)
		}
		if got.Channel != want.Channel || got.Modulation != want.Modulation ||
			got.CodeRate != want.CodeRate || got.ScramblerSeed != want.ScramblerSeed {
			t.Fatalf("waveform %d: header fields differ from DecodeDetailed", i)
		}
		if got.ExtraBits != want.ExtraBits || got.NumSymbols != want.NumSymbols {
			t.Fatalf("waveform %d: layout accounting differs from DecodeDetailed", i)
		}
		if len(got.SymbolEVM) != len(want.SymbolEVM) {
			t.Fatalf("waveform %d: EVM lengths differ", i)
		}
		for s := range want.SymbolEVM {
			if got.SymbolEVM[s] != want.SymbolEVM[s] {
				t.Fatalf("waveform %d: EVM[%d] differs", i, s)
			}
		}
	}
}

func TestDecodeDetailed(t *testing.T) {
	cfg := Config{Modulation: QAM64, CodeRate: Rate34, Channel: CH3}
	enc, err := NewEncoder(cfg)
	if err != nil {
		t.Fatalf("NewEncoder: %v", err)
	}
	payload := []byte("detailed decode result fields under test")
	frame, err := enc.Encode(payload)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	wave, err := frame.Waveform()
	if err != nil {
		t.Fatalf("Waveform: %v", err)
	}
	dec, err := NewDecoder(Config{})
	if err != nil {
		t.Fatalf("NewDecoder: %v", err)
	}
	res, err := dec.DecodeDetailed(wave)
	if err != nil {
		t.Fatalf("DecodeDetailed: %v", err)
	}
	if string(res.Payload) != string(payload) {
		t.Fatalf("payload %q != %q", res.Payload, payload)
	}
	if res.Channel != CH3 {
		t.Fatalf("channel %v, want CH3", res.Channel)
	}
	if res.Modulation != QAM64 || res.CodeRate != Rate34 {
		t.Fatalf("mode %v r=%v, want QAM-64 r=3/4", res.Modulation, res.CodeRate)
	}
	if res.NumSymbols != frame.NumSymbols() {
		t.Fatalf("NumSymbols %d != %d", res.NumSymbols, frame.NumSymbols())
	}
	if res.ExtraBits != frame.ExtraBits() {
		t.Fatalf("ExtraBits %d != %d", res.ExtraBits, frame.ExtraBits())
	}
	if len(res.SymbolEVM) != res.NumSymbols {
		t.Fatalf("SymbolEVM has %d entries for %d symbols", len(res.SymbolEVM), res.NumSymbols)
	}
	for s, evm := range res.SymbolEVM {
		// The default receive path carries I/Q as complex64, so a clean
		// channel bottoms out at the float32 rounding floor (~1e-7), not
		// the old complex128 floor. Anything above 1e-6 is a real defect.
		if evm > 1e-6 {
			t.Fatalf("symbol %d: EVM %g on a clean channel", s, evm)
		}
	}
	if res.ScramblerSeed == 0 {
		t.Fatal("ScramblerSeed not reported")
	}

	// The deprecated thin wrapper agrees with the detailed result.
	p2, ch2, err := dec.DecodePayload(wave)
	if err != nil {
		t.Fatalf("DecodePayload: %v", err)
	}
	if string(p2) != string(payload) || ch2 != CH3 {
		t.Fatalf("DecodePayload disagrees with Decode: %q on %v", p2, ch2)
	}
}
