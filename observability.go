package sledzig

import (
	"io"

	"sledzig/internal/obs"
	"sledzig/internal/obs/trace"
)

// Observability. The library instruments its whole pipeline — encoder and
// decoder stages, the PHY chains, the MAC simulator, channel impairments
// and the transport layer — against an opt-in metrics registry. Without a
// registry every instrumentation point is a nil check, so the cost of not
// opting in is negligible (see docs/observability.md for the measured
// overhead and the metric/event catalogue).
//
//	reg := sledzig.NewMetrics()
//	sledzig.SetDefaultMetrics(reg)
//	addr, _ := reg.Serve("localhost:9090") // /metrics, /debug/vars, /debug/pprof
//	... run traffic ...
//	snap := reg.Snapshot()

// Metrics is the pipeline-wide metrics registry: atomic counters, gauges,
// log-linear latency histograms and a typed event bus. The alias keeps
// callers out of internal packages while exposing the full registry API
// (Counter, Gauge, Histogram, Scope, Bus, Snapshot, WritePrometheus,
// Serve, ...).
type Metrics = obs.Registry

// MetricsSnapshot is a point-in-time copy of every metric.
type MetricsSnapshot = obs.Snapshot

// PipelineEvent is one typed occurrence on the event bus: a MAC
// simulator transition, a decode failure, a channel impairment.
type PipelineEvent = obs.Event

// EventSink consumes pipeline events (see NewEventRing, or implement
// Emit directly).
type EventSink = obs.Sink

// NewMetrics creates an empty metrics registry.
func NewMetrics() *Metrics { return obs.New() }

// SetDefaultMetrics installs r as the process-wide registry all
// instrumented code reports into; nil turns instrumentation back off.
func SetDefaultMetrics(r *Metrics) { obs.SetDefault(r) }

// DefaultMetrics returns the installed registry, or nil.
func DefaultMetrics() *Metrics { return obs.Default() }

// NewEventRing creates an in-memory flight recorder holding the last
// capacity pipeline events; subscribe it with
// DefaultMetrics().Bus().Subscribe(ring).
func NewEventRing(capacity int) *obs.RingSink { return obs.NewRingSink(capacity) }

// NewEventJSONL creates a sink streaming pipeline events to w as JSON
// lines.
func NewEventJSONL(w io.Writer) *obs.JSONLSink { return obs.NewJSONLSink(w) }

// Tracing. Beyond aggregate metrics the pipeline supports per-frame
// tracing: a root span per encode or decode with child spans for every
// pipeline stage, queue-wait vs. service time through the engine worker
// pool, head sampling plus tail-based capture (failed, slow, panicked and
// timed-out frames are always retained), a lock-free flight recorder of
// the last N frame traces dumped as JSON on engine faults, and exporters
// in JSONL and Chrome trace-event format (loadable at ui.perfetto.dev).
// Without a tracer installed every trace point is a nil check — the hot
// paths stay allocation-free.
//
//	sledzig.SetDefaultTracer(sledzig.NewTracer(sledzig.TraceConfig{
//	    SampleEvery:      100,                   // head-sample 1% of frames
//	    LatencyThreshold: 20 * time.Millisecond, // retain slow frames
//	    FaultDumpPath:    "flight.json",         // dump ring on panic/timeout
//	}))
//	... run traffic; curl :9090/debug/traces?format=chrome ...

// Tracer issues per-frame traces and owns the sampling, retention and
// flight-recorder machinery (Flight, Retained, AddExporter, WriteDump).
type Tracer = trace.Tracer

// TraceConfig selects the tracer's sampling and retention policy.
type TraceConfig = trace.Config

// TraceSnapshot is one finished frame trace: trace ID, kind, worker,
// queue-wait/service/total nanoseconds and the per-stage spans.
type TraceSnapshot = trace.Snapshot

// TraceExporter consumes retained frame traces (see NewTraceJSONL).
type TraceExporter = trace.Exporter

// TraceDump is the flight-recorder dump format written on engine faults.
type TraceDump = trace.Dump

// NewTracer builds a tracer with the given policy.
func NewTracer(cfg TraceConfig) *Tracer { return trace.New(cfg) }

// SetDefaultTracer installs t process-wide: the engine worker pool and the
// facade encode/decode paths pick it up, and /debug/traces appears on the
// metrics mux. Passing nil turns tracing back off.
func SetDefaultTracer(t *Tracer) { trace.SetDefault(t) }

// DefaultTracer returns the installed tracer, or nil when tracing is off.
func DefaultTracer() *Tracer { return trace.Default() }

// TraceJSONL streams retained frame traces as JSON lines (see
// NewTraceJSONL).
type TraceJSONL = trace.JSONLExporter

// NewTraceJSONL creates an exporter streaming every retained frame trace
// to w as JSON lines (first write error sticks; check Flush).
func NewTraceJSONL(w io.Writer) *TraceJSONL { return trace.NewJSONLExporter(w) }

// WriteChromeTrace renders frame traces in the Chrome trace-event format,
// loadable in Perfetto (ui.perfetto.dev) and chrome://tracing.
func WriteChromeTrace(w io.Writer, frames []*TraceSnapshot) error {
	return trace.WriteChromeTrace(w, frames)
}
