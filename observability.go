package sledzig

import (
	"io"

	"sledzig/internal/obs"
)

// Observability. The library instruments its whole pipeline — encoder and
// decoder stages, the PHY chains, the MAC simulator, channel impairments
// and the transport layer — against an opt-in metrics registry. Without a
// registry every instrumentation point is a nil check, so the cost of not
// opting in is negligible (see docs/observability.md for the measured
// overhead and the metric/event catalogue).
//
//	reg := sledzig.NewMetrics()
//	sledzig.SetDefaultMetrics(reg)
//	addr, _ := reg.Serve("localhost:9090") // /metrics, /debug/vars, /debug/pprof
//	... run traffic ...
//	snap := reg.Snapshot()

// Metrics is the pipeline-wide metrics registry: atomic counters, gauges,
// log-linear latency histograms and a typed event bus. The alias keeps
// callers out of internal packages while exposing the full registry API
// (Counter, Gauge, Histogram, Scope, Bus, Snapshot, WritePrometheus,
// Serve, ...).
type Metrics = obs.Registry

// MetricsSnapshot is a point-in-time copy of every metric.
type MetricsSnapshot = obs.Snapshot

// PipelineEvent is one typed occurrence on the event bus: a MAC
// simulator transition, a decode failure, a channel impairment.
type PipelineEvent = obs.Event

// EventSink consumes pipeline events (see NewEventRing, or implement
// Emit directly).
type EventSink = obs.Sink

// NewMetrics creates an empty metrics registry.
func NewMetrics() *Metrics { return obs.New() }

// SetDefaultMetrics installs r as the process-wide registry all
// instrumented code reports into; nil turns instrumentation back off.
func SetDefaultMetrics(r *Metrics) { obs.SetDefault(r) }

// DefaultMetrics returns the installed registry, or nil.
func DefaultMetrics() *Metrics { return obs.Default() }

// NewEventRing creates an in-memory flight recorder holding the last
// capacity pipeline events; subscribe it with
// DefaultMetrics().Bus().Subscribe(ring).
func NewEventRing(capacity int) *obs.RingSink { return obs.NewRingSink(capacity) }

// NewEventJSONL creates a sink streaming pipeline events to w as JSON
// lines.
func NewEventJSONL(w io.Writer) *obs.JSONLSink { return obs.NewJSONLSink(w) }
