// Package sledzig is a software reproduction of "SledZig: Boosting
// Cross-Technology Coexistence for Low-Power Wireless Devices"
// (ICDCS 2022): a WiFi payload-encoding mechanism that pins the OFDM
// subcarriers overlapping a chosen ZigBee channel to the lowest-power QAM
// constellation points, cutting the WiFi energy inside that 2 MHz band by
// up to ~19 dB while the transmit chain stays 100% standard.
//
// The package is a facade over the internal substrates:
//
//   - internal/wifi — a bit-exact 802.11 OFDM baseband PHY,
//   - internal/zigbee — the 802.15.4 DSSS/O-QPSK PHY,
//   - internal/core — the SledZig encoder/decoder itself,
//   - internal/channel — the paper-calibrated radio environment,
//   - internal/mac — the CSMA/CA coexistence simulator.
//
// Quickstart:
//
//	enc, _ := sledzig.NewEncoder(sledzig.Config{
//	    Modulation: sledzig.QAM64,
//	    CodeRate:   sledzig.Rate34,
//	    Channel:    sledzig.CH2,
//	})
//	frame, _ := enc.Encode([]byte("hello zigbee neighbours"))
//	wave, _ := frame.Waveform()            // 20 MS/s baseband samples
//	dec, _ := sledzig.NewDecoder(sledzig.Config{})
//	payload, ch, _ := dec.Decode(wave)     // channel auto-detected
package sledzig

import (
	"fmt"

	"sledzig/internal/bits"
	"sledzig/internal/core"
	"sledzig/internal/obs/trace"
	"sledzig/internal/wifi"
)

// Re-exported enumerations so callers never import internal packages.
type (
	// Modulation is the WiFi subcarrier modulation.
	Modulation = wifi.Modulation
	// CodeRate is the convolutional coding rate.
	CodeRate = wifi.CodeRate
	// Convention selects the bit-pipeline convention (IEEE-exact or the
	// paper's USRP implementation, reverse-engineered from its Table II).
	Convention = wifi.Convention
	// Channel is one of the four ZigBee channels overlapping the WiFi
	// channel.
	Channel = core.ZigBeeChannel
)

// Supported modulations.
const (
	BPSK   = wifi.BPSK
	QPSK   = wifi.QPSK
	QAM16  = wifi.QAM16
	QAM64  = wifi.QAM64
	QAM256 = wifi.QAM256
)

// Supported coding rates.
const (
	Rate12 = wifi.Rate12
	Rate23 = wifi.Rate23
	Rate34 = wifi.Rate34
	Rate56 = wifi.Rate56
)

// Pipeline conventions.
const (
	ConventionIEEE  = wifi.ConventionIEEE
	ConventionPaper = wifi.ConventionPaper
)

// Overlapped ZigBee channels (ascending frequency; on WiFi channel 13
// these are ZigBee channels 23-26).
const (
	CH1 = core.CH1
	CH2 = core.CH2
	CH3 = core.CH3
	CH4 = core.CH4
)

// Config selects the transmission parameters. The zero value of Channel is
// invalid for encoding; decoding detects the channel from the air.
//
// Zero values of the remaining fields select documented defaults (see
// WithDefaults): QAM-16, rate 1/2, ConventionIEEE, and the 802.11 Annex G
// scrambler seed.
type Config struct {
	Modulation Modulation
	CodeRate   CodeRate
	Channel    Channel
	// Convention selects the bit pipeline. The zero value is
	// ConventionIEEE (the 802.11-standard interleaver and labeling); set
	// ConventionPaper to match the authors' USRP implementation, whose
	// Table II bit positions this repository reproduces exactly.
	Convention Convention
	// ScramblerSeed (1..127); 0 selects the 802.11 Annex G example seed.
	ScramblerSeed uint8
	// Resilient enables the receiver's graceful-degradation ladder when
	// decoding: a capture that fails at sample 0 is rescanned for the
	// preamble and retried from the detected PPDU start (recovering
	// captures with leading garbage), at the cost of one extra decode
	// attempt on genuinely undecodable input. See docs/robustness.md.
	Resilient bool
}

// WithDefaults returns a copy of the config with every zero field resolved
// to its documented default: QAM-16 modulation, rate 1/2 coding, and the
// 802.11 Annex G scrambler seed (0x5D). Channel has no default — the zero
// value stays zero and remains invalid for encoding — and Convention's
// zero value already is ConventionIEEE.
func (c Config) WithDefaults() Config {
	if c.Modulation == 0 {
		c.Modulation = QAM16
	}
	if c.CodeRate == 0 {
		c.CodeRate = Rate12
	}
	if c.ScramblerSeed == 0 {
		c.ScramblerSeed = wifi.DefaultScramblerSeed
	}
	return c
}

// Validate reports whether every set field is a supported value. Zero
// fields are accepted (they have defaults — see WithDefaults) except that
// encoding additionally requires a valid Channel, which NewEncoder checks
// and reports as ErrInvalidChannel. Any other out-of-range field wraps
// ErrInvalidConfig.
func (c Config) Validate() error {
	if c.Modulation != 0 && !c.Modulation.Valid() {
		return fmt.Errorf("%w: invalid modulation %d", ErrInvalidConfig, int(c.Modulation))
	}
	if c.CodeRate != 0 && !c.CodeRate.Valid() {
		return fmt.Errorf("%w: invalid code rate %d", ErrInvalidConfig, int(c.CodeRate))
	}
	if c.Channel != 0 && !c.Channel.Valid() {
		return fmt.Errorf("%w: %d is not CH1..CH4", ErrInvalidChannel, int(c.Channel))
	}
	if c.Convention != ConventionIEEE && c.Convention != ConventionPaper {
		return fmt.Errorf("%w: invalid convention %d", ErrInvalidConfig, int(c.Convention))
	}
	if c.ScramblerSeed > 127 {
		return fmt.Errorf("%w: scrambler seed %d outside [0, 127]", ErrInvalidConfig, c.ScramblerSeed)
	}
	return nil
}

// mode resolves the PHY mode with the zero-value defaults applied.
func (c Config) mode() wifi.Mode {
	c = c.WithDefaults()
	return wifi.Mode{Modulation: c.Modulation, CodeRate: c.CodeRate}
}

// Encoder produces SledZig frames.
type Encoder struct {
	cfg  Config
	plan *core.Plan
	enc  *core.Encoder
}

// NewEncoder validates the configuration and resolves the extra-bit plan
// through the process-wide plan cache, so repeated constructions with the
// same parameters (and Engines sharing them) reuse one precomputed plan.
func NewEncoder(cfg Config) (*Encoder, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !cfg.Channel.Valid() {
		return nil, fmt.Errorf("%w: config must name a protected channel (CH1..CH4)", ErrInvalidChannel)
	}
	plan, err := core.CachedPlan(cfg.Convention, cfg.mode(), cfg.Channel)
	if err != nil {
		return nil, err
	}
	return &Encoder{
		cfg:  cfg,
		plan: plan,
		enc:  &core.Encoder{Plan: plan, Seed: cfg.ScramblerSeed},
	}, nil
}

// Frame is an encoded SledZig PPDU.
type Frame struct {
	res *core.EncodeResult
}

// Encode builds the frame carrying payload.
func (e *Encoder) Encode(payload []byte) (*Frame, error) {
	// Root frame trace (nil, and free, with no tracer installed). The
	// shared core encoder is copied by value so setting the trace never
	// races concurrent Encode calls on the same Encoder.
	tf := trace.Start("encode")
	enc := *e.enc
	enc.Trace = tf
	res, err := enc.Encode(payload)
	tf.Finish(err)
	if err != nil {
		return nil, wrapEncodeErr(err)
	}
	// Detach the closed trace: waveform synthesis gets its own root.
	res.Frame.Trace = nil
	return &Frame{res: res}, nil
}

// Waveform renders the complete PPDU (preamble + SIGNAL + DATA) at
// 20 MS/s complex baseband.
func (f *Frame) Waveform() ([]complex128, error) {
	// Trace synthesis as its own root frame, on a value copy of the
	// wifi.Frame so concurrent renders of one Frame never race.
	tf := trace.Start("waveform")
	wf := *f.res.Frame
	wf.Trace = tf
	wave, err := wf.Waveform()
	tf.Finish(err)
	return wave, err
}

// AppendWaveform renders the PPDU appended to dst and returns the extended
// slice — the allocation-lean variant for callers that render many frames
// into recycled buffers. The samples are identical to Waveform's.
func (f *Frame) AppendWaveform(dst []complex128) ([]complex128, error) {
	tf := trace.Start("waveform")
	wf := *f.res.Frame
	wf.Trace = tf
	out, err := wf.AppendWaveform(dst)
	tf.Finish(err)
	return out, err
}

// TransmitBits returns the unscrambled DATA-field bits — what a completely
// standard 802.11 transmitter would be fed to emit this exact frame. Each
// byte holds one bit (0/1).
func (f *Frame) TransmitBits() []byte {
	return bits.Clone(f.res.TransmitBits)
}

// NumSymbols returns the frame length in OFDM symbols.
func (f *Frame) NumSymbols() int { return f.res.Frame.NumSymbols }

// ExtraBits returns how many extra bits the frame spent satisfying the
// constellation constraints.
func (f *Frame) ExtraBits() int { return len(f.res.Layout.Positions) }

// AirtimeSeconds returns the PPDU duration on the air.
func (f *Frame) AirtimeSeconds() float64 { return f.res.Frame.Duration() }

// OverheadFraction is the per-symbol throughput loss of the encoder's
// plan (paper Table IV).
func (e *Encoder) OverheadFraction() float64 { return e.plan.ThroughputLossFraction() }

// ExtraBitsPerSymbol is the paper's Table III count for this plan.
func (e *Encoder) ExtraBitsPerSymbol() int { return e.plan.ExtraBitsPerSymbol() }

// MaxPayload returns the largest payload that fits in n OFDM symbols.
func (e *Encoder) MaxPayload(nSymbols int) int { return e.enc.MaxPayload(nSymbols) }

// Decoder recovers payloads from received waveforms.
type Decoder struct {
	cfg Config
}

// NewDecoder builds a decoder; only Convention and ScramblerSeed of cfg
// matter (mode and channel are read off the air).
func NewDecoder(cfg Config) (*Decoder, error) {
	return &Decoder{cfg: cfg}, nil
}

// Decode demodulates a PPDU waveform, detects the protected ZigBee
// channel from the constellation, strips the extra bits, and returns the
// original payload.
//
// Decode is the compatibility surface: it is a thin wrapper over
// DecodeDetailed, which additionally reports the detected mode, the
// extra-bit count and per-symbol EVM.
func (d *Decoder) Decode(waveform []complex128) ([]byte, Channel, error) {
	res, err := d.DecodeDetailed(waveform)
	if err != nil {
		return nil, 0, err
	}
	return res.Payload, res.Channel, nil
}

// DecodeNormal demodulates a standard (non-SledZig) WiFi PPDU and returns
// its PSDU — useful for baseline comparisons. Like Decode it is a thin
// compatibility wrapper; the SledZig-specific stages are skipped.
func (d *Decoder) DecodeNormal(waveform []complex128) ([]byte, error) {
	tf := trace.Start("decode")
	rx, err := wifi.Receiver{Seed: d.cfg.ScramblerSeed, Convention: d.cfg.Convention, Resync: d.cfg.Resilient, Trace: tf}.Receive(waveform)
	tf.Finish(err)
	if err != nil {
		return nil, wrapDecodeErr(err)
	}
	return rx.PSDU, nil
}

// PowerReductionDB returns the theoretical per-subcarrier power drop of
// pinning a modulation to its lowest ring (7.0 / 13.2 / 19.3 dB for
// QAM-16/64/256 — paper section III-B).
func PowerReductionDB(m Modulation) float64 {
	return wifi.PowerReductionDB(m)
}

// ChannelFromNumbers maps absolute channel numbers (ZigBee 11..26, WiFi
// 1..13) to the relative overlapped channel.
func ChannelFromNumbers(zigbeeChannel, wifiChannel int) (Channel, error) {
	return core.FromZigBeeChannelNumber(zigbeeChannel, wifiChannel)
}

// SenseProtectedChannel inspects a quiet-period baseband capture (20 MS/s,
// centered on the WiFi channel) and reports which overlapped ZigBee
// channel carries a low-power neighbour worth protecting — the adaptive
// variant the paper sketches in its related-work discussion. ok is false
// when no channel stands out of the noise.
func SenseProtectedChannel(capture []complex128) (Channel, bool, error) {
	return core.ChannelSensor{}.Sense(capture)
}
