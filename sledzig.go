// Package sledzig is a software reproduction of "SledZig: Boosting
// Cross-Technology Coexistence for Low-Power Wireless Devices"
// (ICDCS 2022): a WiFi payload-encoding mechanism that pins the OFDM
// subcarriers overlapping a chosen ZigBee channel to the lowest-power QAM
// constellation points, cutting the WiFi energy inside that 2 MHz band by
// up to ~19 dB while the transmit chain stays 100% standard.
//
// The package is a facade over the internal substrates:
//
//   - internal/wifi — a bit-exact 802.11 OFDM baseband PHY,
//   - internal/zigbee — the 802.15.4 DSSS/O-QPSK PHY,
//   - internal/core — the SledZig encoder/decoder itself,
//   - internal/codec — the codec registry (SledZig and the related-work
//     coexistence mechanisms behind one contract — see docs/codecs.md),
//   - internal/channel — the paper-calibrated radio environment,
//   - internal/mac — the CSMA/CA coexistence simulator.
//
// Quickstart:
//
//	enc, _ := sledzig.NewEncoder(sledzig.Config{
//	    Modulation: sledzig.QAM64,
//	    CodeRate:   sledzig.Rate34,
//	    Channel:    sledzig.CH2,
//	})
//	frame, _ := enc.Encode([]byte("hello zigbee neighbours"))
//	wave, _ := frame.Waveform()            // 20 MS/s baseband samples
//	dec, _ := sledzig.NewDecoder(sledzig.Config{})
//	res, _ := dec.Decode(wave)             // channel auto-detected
//	_ = res.Payload
//
// Config.Codec swaps the coexistence mechanism while keeping the same
// Encoder/Decoder/Engine surface: "sledzig" (default), "ook-ctc" (the
// SLEM-style energy-modulation side channel) or "ofdmfi" (an
// OfdmFi-style message-embedding waveform). See Codecs and docs/codecs.md.
package sledzig

import (
	"fmt"
	"sync"

	"sledzig/internal/bits"
	"sledzig/internal/codec"
	"sledzig/internal/core"
	"sledzig/internal/obs/trace"
	"sledzig/internal/wifi"
)

// Re-exported enumerations so callers never import internal packages.
type (
	// Modulation is the WiFi subcarrier modulation.
	Modulation = wifi.Modulation
	// CodeRate is the convolutional coding rate.
	CodeRate = wifi.CodeRate
	// Convention selects the bit-pipeline convention (IEEE-exact or the
	// paper's USRP implementation, reverse-engineered from its Table II).
	Convention = wifi.Convention
	// Channel is one of the four ZigBee channels overlapping the WiFi
	// channel.
	Channel = core.ZigBeeChannel
)

// Supported modulations.
const (
	BPSK   = wifi.BPSK
	QPSK   = wifi.QPSK
	QAM16  = wifi.QAM16
	QAM64  = wifi.QAM64
	QAM256 = wifi.QAM256
)

// Supported coding rates.
const (
	Rate12 = wifi.Rate12
	Rate23 = wifi.Rate23
	Rate34 = wifi.Rate34
	Rate56 = wifi.Rate56
)

// Pipeline conventions.
const (
	ConventionIEEE  = wifi.ConventionIEEE
	ConventionPaper = wifi.ConventionPaper
)

// Overlapped ZigBee channels (ascending frequency; on WiFi channel 13
// these are ZigBee channels 23-26).
const (
	CH1 = core.CH1
	CH2 = core.CH2
	CH3 = core.CH3
	CH4 = core.CH4
)

// Registered codec backends for Config.Codec (see docs/codecs.md).
const (
	// CodecSledZig is the paper's mechanism: every DATA symbol pinned,
	// payload carried as ordinary WiFi data.
	CodecSledZig = "sledzig"
	// CodecOOK is the SLEM-style energy-modulation side channel: the
	// payload rides as WiFi data while in-band energy toggles spell an
	// OOK digest readable by RSSI sampling.
	CodecOOK = "ook-ctc"
	// CodecOfdmFi is an OfdmFi-style message-embedding waveform: the
	// subcarrier power pattern is the payload; no WiFi data is carried.
	CodecOfdmFi = "ofdmfi"
)

// Codecs lists the registered codec backends, sorted by name.
func Codecs() []string { return codec.Names() }

// Config selects the transmission parameters. The zero value of Channel is
// invalid for encoding; decoding detects the channel from the air where
// the codec allows it.
//
// Zero values of the remaining fields select documented defaults (see
// WithDefaults): the "sledzig" codec, QAM-16, rate 1/2, ConventionIEEE,
// and the 802.11 Annex G scrambler seed.
type Config struct {
	Modulation Modulation
	CodeRate   CodeRate
	Channel    Channel
	// Convention selects the bit pipeline. The zero value is
	// ConventionIEEE (the 802.11-standard interleaver and labeling); set
	// ConventionPaper to match the authors' USRP implementation, whose
	// Table II bit positions this repository reproduces exactly.
	Convention Convention
	// ScramblerSeed (1..127); 0 selects the 802.11 Annex G example seed.
	ScramblerSeed uint8
	// Resilient enables the receiver's graceful-degradation ladder when
	// decoding: a capture that fails at sample 0 is rescanned for the
	// preamble and retried from the detected PPDU start (recovering
	// captures with leading garbage), at the cost of one extra decode
	// attempt on genuinely undecodable input. See docs/robustness.md.
	Resilient bool
	// Codec names the coexistence mechanism: one of Codecs(). Empty
	// selects CodecSledZig. Non-default codecs need a valid Channel on
	// both sides (their receivers decode a fixed configured channel).
	Codec string
	// WideIQ routes decoding through the complex128 reference receive
	// pipeline. The zero value uses the narrow complex64 I/Q path, which
	// is ~equally accurate (precision loss far below the noise floor of
	// any real capture — see docs/performance.md) and markedly faster.
	// Set WideIQ only when bit-exact parity with the historical wide
	// receiver matters, e.g. when diffing against archived results.
	WideIQ bool
}

// WithDefaults returns a copy of the config with every zero field resolved
// to its documented default: the "sledzig" codec, QAM-16 modulation, rate
// 1/2 coding, and the 802.11 Annex G scrambler seed (0x5D). Channel has no
// default — the zero value stays zero and remains invalid for encoding —
// and Convention's zero value already is ConventionIEEE.
func (c Config) WithDefaults() Config {
	if c.Modulation == 0 {
		c.Modulation = QAM16
	}
	if c.CodeRate == 0 {
		c.CodeRate = Rate12
	}
	if c.ScramblerSeed == 0 {
		c.ScramblerSeed = wifi.DefaultScramblerSeed
	}
	if c.Codec == "" {
		c.Codec = CodecSledZig
	}
	return c
}

// Validate reports whether every set field is a supported value. Zero
// fields are accepted (they have defaults — see WithDefaults) except that
// encoding additionally requires a valid Channel, which NewEncoder checks
// and reports as ErrInvalidChannel. Any other out-of-range field wraps
// ErrInvalidConfig.
func (c Config) Validate() error {
	if c.Modulation != 0 && !c.Modulation.Valid() {
		return fmt.Errorf("%w: invalid modulation %d", ErrInvalidConfig, int(c.Modulation))
	}
	if c.CodeRate != 0 && !c.CodeRate.Valid() {
		return fmt.Errorf("%w: invalid code rate %d", ErrInvalidConfig, int(c.CodeRate))
	}
	if c.Channel != 0 && !c.Channel.Valid() {
		return fmt.Errorf("%w: %d is not CH1..CH4", ErrInvalidChannel, int(c.Channel))
	}
	if c.Convention != ConventionIEEE && c.Convention != ConventionPaper {
		return fmt.Errorf("%w: invalid convention %d", ErrInvalidConfig, int(c.Convention))
	}
	if c.ScramblerSeed > 127 {
		return fmt.Errorf("%w: scrambler seed %d outside [0, 127]", ErrInvalidConfig, c.ScramblerSeed)
	}
	if c.Codec != "" && !codec.Known(c.Codec) {
		return fmt.Errorf("%w: unknown codec %q (registered: %v)", ErrInvalidConfig, c.Codec, codec.Names())
	}
	return nil
}

// mode resolves the PHY mode with the zero-value defaults applied.
func (c Config) mode() wifi.Mode {
	c = c.WithDefaults()
	return wifi.Mode{Modulation: c.Modulation, CodeRate: c.CodeRate}
}

// codecParams maps the public config onto the codec-layer parameters.
func (c Config) codecParams() codec.Params {
	c = c.WithDefaults()
	return codec.Params{
		Convention: c.Convention,
		Mode:       wifi.Mode{Modulation: c.Modulation, CodeRate: c.CodeRate},
		Channel:    c.Channel,
		Seed:       c.ScramblerSeed,
		Resilient:  c.Resilient,
		WideIQ:     c.WideIQ,
	}
}

// newCodec builds the configured non-default codec backend, mapping
// construction failures onto the public taxonomy.
func (c Config) newCodec() (codec.Codec, error) {
	if !c.Channel.Valid() {
		return nil, fmt.Errorf("%w: codec %q works on a fixed channel; config must name CH1..CH4", ErrInvalidChannel, c.Codec)
	}
	cdc, err := codec.New(c.Codec, c.codecParams())
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrInvalidConfig, err)
	}
	return cdc, nil
}

// Encoder produces coexistence-encoded frames for the configured codec
// backend (SledZig by default). It is safe for concurrent use.
type Encoder struct {
	cfg  Config
	plan *core.Plan
	enc  *core.Encoder

	// Non-default codec backends encode through the registry contract;
	// instances hold recycled state, so calls serialize on mu.
	cdc codec.Codec
	mu  sync.Mutex
}

// NewEncoder resolves the config defaults, validates it, and prepares the
// selected codec backend. For the default SledZig codec the extra-bit plan
// resolves through the process-wide plan cache, so repeated constructions
// with the same parameters (and Engines sharing them) reuse one
// precomputed plan.
func NewEncoder(cfg Config) (*Encoder, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !cfg.Channel.Valid() {
		return nil, fmt.Errorf("%w: config must name a protected channel (CH1..CH4)", ErrInvalidChannel)
	}
	if cfg.Codec != CodecSledZig {
		cdc, err := cfg.newCodec()
		if err != nil {
			return nil, err
		}
		return &Encoder{cfg: cfg, cdc: cdc}, nil
	}
	plan, err := core.CachedPlan(cfg.Convention, cfg.mode(), cfg.Channel)
	if err != nil {
		return nil, err
	}
	return &Encoder{
		cfg:  cfg,
		plan: plan,
		enc:  &core.Encoder{Plan: plan, Seed: cfg.ScramblerSeed},
	}, nil
}

// Frame is an encoded PPDU from one of the codec backends.
type Frame struct {
	res *core.EncodeResult // SledZig path
	enc *codec.Encoded     // generic codec path
	cdc string             // backend name ("" means CodecSledZig)
}

// Encode builds the frame carrying payload.
func (e *Encoder) Encode(payload []byte) (*Frame, error) {
	if e.cdc != nil {
		tf := trace.Start("encode")
		e.mu.Lock()
		t, traceable := e.cdc.(codec.Traceable)
		if traceable {
			t.SetTrace(tf)
		}
		enc, err := e.cdc.Encode(payload)
		if traceable {
			t.SetTrace(nil)
		}
		e.mu.Unlock()
		tf.Finish(err)
		if err != nil {
			return nil, wrapEncodeErr(err)
		}
		return &Frame{enc: enc, cdc: e.cfg.Codec}, nil
	}
	// Root frame trace (nil, and free, with no tracer installed). The
	// shared core encoder is copied by value so setting the trace never
	// races concurrent Encode calls on the same Encoder.
	tf := trace.Start("encode")
	enc := *e.enc
	enc.Trace = tf
	res, err := enc.Encode(payload)
	tf.Finish(err)
	if err != nil {
		return nil, wrapEncodeErr(err)
	}
	// Detach the closed trace: waveform synthesis gets its own root.
	res.Frame.Trace = nil
	return &Frame{res: res}, nil
}

// Codec names the backend that produced the frame.
func (f *Frame) Codec() string {
	if f.cdc == "" {
		return CodecSledZig
	}
	return f.cdc
}

// Waveform renders the complete PPDU (preamble + header + DATA) at
// 20 MS/s complex baseband. The returned slice is the caller's.
func (f *Frame) Waveform() ([]complex128, error) {
	if f.enc != nil {
		return append([]complex128(nil), f.enc.Waveform...), nil
	}
	// Trace synthesis as its own root frame, on a value copy of the
	// wifi.Frame so concurrent renders of one Frame never race.
	tf := trace.Start("waveform")
	wf := *f.res.Frame
	wf.Trace = tf
	wave, err := wf.Waveform()
	tf.Finish(err)
	return wave, err
}

// AppendWaveform renders the PPDU appended to dst and returns the extended
// slice — the allocation-lean variant for callers that render many frames
// into recycled buffers. The samples are identical to Waveform's.
func (f *Frame) AppendWaveform(dst []complex128) ([]complex128, error) {
	if f.enc != nil {
		return append(dst, f.enc.Waveform...), nil
	}
	tf := trace.Start("waveform")
	wf := *f.res.Frame
	wf.Trace = tf
	out, err := wf.AppendWaveform(dst)
	tf.Finish(err)
	return out, err
}

// TransmitBits returns the unscrambled DATA-field bits — what a completely
// standard 802.11 transmitter would be fed to emit this exact frame. Each
// byte holds one bit (0/1). Codec backends whose waveform is not a
// standard PPDU (CodecOfdmFi) return nil.
func (f *Frame) TransmitBits() []byte {
	if f.res == nil {
		return nil
	}
	return bits.Clone(f.res.TransmitBits)
}

// NumSymbols returns the frame length in DATA OFDM symbols.
func (f *Frame) NumSymbols() int {
	if f.enc != nil {
		return f.enc.NumSymbols
	}
	return f.res.Frame.NumSymbols
}

// ExtraBits returns how many extra bits the frame spent satisfying the
// constellation constraints (0 for codec backends that do not use the
// extra-bit mechanism frame-wide).
func (f *Frame) ExtraBits() int {
	if f.res == nil {
		return 0
	}
	return len(f.res.Layout.Positions)
}

// ProtectedSymbols reports, per DATA OFDM symbol, whether the codec held
// the protected band low during that symbol. Nil means every symbol is
// protected — SledZig's whole-frame contract. Energy-modulation codecs
// (CodecOOK) protect only the low half of their symbols.
func (f *Frame) ProtectedSymbols() []bool {
	if f.enc == nil || f.enc.ProtectedMask == nil {
		return nil
	}
	return append([]bool(nil), f.enc.ProtectedMask...)
}

// AirtimeSeconds returns the PPDU duration on the air.
func (f *Frame) AirtimeSeconds() float64 {
	if f.enc != nil {
		return f.enc.AirtimeSeconds
	}
	return f.res.Frame.Duration()
}

// OverheadFraction is the fraction of the frame's standard WiFi data
// throughput the mechanism costs: the per-symbol extra-bit loss for
// SledZig (paper Table IV), 1 for codecs that carry no WiFi data.
func (e *Encoder) OverheadFraction() float64 {
	if e.cdc != nil {
		return e.cdc.OverheadFraction()
	}
	return e.plan.ThroughputLossFraction()
}

// ExtraBitsPerSymbol is the paper's Table III count for this plan (0 for
// codec backends that do not pin every symbol).
func (e *Encoder) ExtraBitsPerSymbol() int {
	if e.plan == nil {
		return 0
	}
	return e.plan.ExtraBitsPerSymbol()
}

// MaxPayload returns the largest payload that fits in n OFDM symbols.
// Codec backends with their own framing ignore n and report their
// single-frame bound.
func (e *Encoder) MaxPayload(nSymbols int) int {
	if e.cdc != nil {
		return e.cdc.MaxPayload()
	}
	return e.enc.MaxPayload(nSymbols)
}

// PowerReductionDB returns the theoretical per-subcarrier power drop of
// pinning a modulation to its lowest ring (7.0 / 13.2 / 19.3 dB for
// QAM-16/64/256 — paper section III-B).
func PowerReductionDB(m Modulation) float64 {
	return wifi.PowerReductionDB(m)
}

// ChannelFromNumbers maps absolute channel numbers (ZigBee 11..26, WiFi
// 1..13) to the relative overlapped channel.
func ChannelFromNumbers(zigbeeChannel, wifiChannel int) (Channel, error) {
	return core.FromZigBeeChannelNumber(zigbeeChannel, wifiChannel)
}

// SenseProtectedChannel inspects a quiet-period baseband capture (20 MS/s,
// centered on the WiFi channel) and reports which overlapped ZigBee
// channel carries a low-power neighbour worth protecting — the adaptive
// variant the paper sketches in its related-work discussion. ok is false
// when no channel stands out of the noise.
func SenseProtectedChannel(capture []complex128) (Channel, bool, error) {
	return core.ChannelSensor{}.Sense(capture)
}
