package sledzig_test

import (
	"encoding/binary"
	"errors"
	"math"
	"math/rand"
	"testing"

	"sledzig"
	"sledzig/internal/fault"
)

// decodeSentinels is the complete public decode taxonomy: every decode
// failure, however hostile the input, must match one of these.
var decodeSentinels = []error{
	sledzig.ErrNoPreamble,
	sledzig.ErrBadSignalField,
	sledzig.ErrDemodulation,
	sledzig.ErrNoProtectedChannel,
	sledzig.ErrExtraBitMismatch,
	sledzig.ErrPayloadTooLarge,
}

func assertTypedDecodeErr(t *testing.T, err error) {
	t.Helper()
	if err == nil {
		return
	}
	for _, s := range decodeSentinels {
		if errors.Is(err, s) {
			return
		}
	}
	t.Fatalf("decode error outside the public taxonomy: %v", err)
}

// wavesToBytes / bytesToWaves map waveforms onto fuzz corpora: 16 bytes
// per sample (two little-endian float64s).
func waveToBytes(wave []complex128) []byte {
	out := make([]byte, 16*len(wave))
	for i, s := range wave {
		binary.LittleEndian.PutUint64(out[16*i:], math.Float64bits(real(s)))
		binary.LittleEndian.PutUint64(out[16*i+8:], math.Float64bits(imag(s)))
	}
	return out
}

func bytesToWave(data []byte) []complex128 {
	n := len(data) / 16
	const maxSamples = 1 << 13 // keep single fuzz iterations fast
	if n > maxSamples {
		n = maxSamples
	}
	wave := make([]complex128, n)
	for i := range wave {
		re := math.Float64frombits(binary.LittleEndian.Uint64(data[16*i:]))
		im := math.Float64frombits(binary.LittleEndian.Uint64(data[16*i+8:]))
		wave[i] = complex(re, im)
	}
	return wave
}

func fuzzFrameWaveform(tb testing.TB) []complex128 {
	tb.Helper()
	enc, err := sledzig.NewEncoder(sledzig.Config{Channel: sledzig.CH2})
	if err != nil {
		tb.Fatal(err)
	}
	frame, err := enc.Encode([]byte("fuzz seed payload for sledzig"))
	if err != nil {
		tb.Fatal(err)
	}
	wave, err := frame.Waveform()
	if err != nil {
		tb.Fatal(err)
	}
	return wave
}

// FuzzDecodeWaveform feeds arbitrary sample streams to both the plain and
// the Resilient decoder: any input may fail, but only with a typed
// taxonomy error — never a panic. The corpus is seeded with a clean frame
// and with fault-injected variants of it.
func FuzzDecodeWaveform(f *testing.F) {
	wave := fuzzFrameWaveform(f)
	f.Add(waveToBytes(wave))
	f.Add(waveToBytes(wave[:len(wave)/3]))
	rng := rand.New(rand.NewSource(42))
	for _, inj := range []fault.Injector{
		fault.Truncate{Fraction: 0.4},
		fault.Clip{Factor: 0.3},
		fault.SignalCorruption{Samples: 12},
		fault.Dropout{Spans: 3, SpanLen: 200},
		fault.IQImbalance{GainDB: 3, PhaseDeg: 20},
	} {
		f.Add(waveToBytes(inj.Apply(rng, append([]complex128(nil), wave...))))
	}
	f.Add([]byte{})
	f.Add(make([]byte, 1600))

	dec, err := sledzig.NewDecoder(sledzig.Config{})
	if err != nil {
		f.Fatal(err)
	}
	resilient, err := sledzig.NewDecoder(sledzig.Config{Resilient: true})
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		w := bytesToWave(data)
		_, derr := dec.Decode(w)
		assertTypedDecodeErr(t, derr)
		_, derr = resilient.Decode(w)
		assertTypedDecodeErr(t, derr)
		_, nerr := dec.DecodeNormal(w)
		assertTypedDecodeErr(t, nerr)
	})
}

// FuzzSignalField perturbs the SIGNAL symbol region of an otherwise valid
// frame — the one OFDM symbol whose corruption steers the whole decode
// (RATE, LENGTH, parity). Whatever the perturbation, the decoder must
// return a typed error or a successful decode, never panic.
func FuzzSignalField(f *testing.F) {
	base := fuzzFrameWaveform(f)
	rng := rand.New(rand.NewSource(43))
	f.Add([]byte{})
	f.Add([]byte{0xFF})
	// Seed with the sign-flip patterns the fault injector uses.
	sc := fault.SignalCorruption{Samples: 8}
	corrupted := sc.Apply(rng, append([]complex128(nil), base...))
	var seed []byte
	for i := 320; i < 400 && i < len(base); i++ {
		if corrupted[i] != base[i] {
			seed = append(seed, byte(i-320))
		}
	}
	f.Add(seed)

	dec, err := sledzig.NewDecoder(sledzig.Config{})
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		w := append([]complex128(nil), base...)
		// Each byte perturbs one SIGNAL-region sample: low 7 bits pick the
		// offset within the 80-sample symbol, the high bit picks negation
		// versus an additive kick.
		for _, b := range data {
			i := 320 + int(b&0x7F)
			if i >= len(w) {
				continue
			}
			if b&0x80 != 0 {
				w[i] = -w[i]
			} else {
				w[i] += complex(0.05, -0.05)
			}
		}
		_, derr := dec.Decode(w)
		assertTypedDecodeErr(t, derr)
	})
}
