// Command sledzig-decode recovers a SledZig payload from a baseband
// capture in cf32 format (e.g. recorded by a USRP or produced by
// sledzig-encode -out). It estimates and corrects the carrier offset,
// decodes the PPDU, detects the protected ZigBee channel from the
// constellation, and strips the extra bits.
package main

import (
	"flag"
	"fmt"
	"log"
	"unicode"

	"sledzig/internal/core"
	"sledzig/internal/iq"
	"sledzig/internal/wifi"
)

func main() {
	log.SetFlags(0)
	in := flag.String("in", "", "cf32 capture file (20 MS/s, PPDU at sample 0)")
	conv := flag.String("convention", "ieee", "pipeline convention: ieee or paper (must match the encoder)")
	soft := flag.Bool("soft", true, "use the soft-decision receive chain")
	flag.Parse()
	if *in == "" {
		log.Fatal("usage: sledzig-decode -in capture.cf32")
	}
	convention := wifi.ConventionIEEE
	if *conv == "paper" {
		convention = wifi.ConventionPaper
	} else if *conv != "ieee" {
		log.Fatalf("unknown convention %q", *conv)
	}

	wave, err := iq.ReadFile(*in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("capture:   %d samples (%.1f us at 20 MS/s)\n", len(wave), float64(len(wave))/20)

	rxer := wifi.Receiver{Convention: convention, Soft: *soft}
	rx, start, err := wifi.Synchronizer{}.ReceiveUnsynchronized(rxer, wave)
	if err != nil {
		log.Fatalf("receive: %v", err)
	}
	fmt.Printf("PPDU:      %v, %d octets signalled, detected at sample %d\n", rx.Mode, rx.PSDULength, start)

	dec := core.Decoder{Convention: convention}
	payload, ch, err := dec.DecodeAuto(rx)
	if err != nil {
		// Not a SledZig frame? Report the plain PSDU instead.
		fmt.Printf("no SledZig channel detected (%v); plain PSDU: %d octets\n", err, len(rx.PSDU))
		return
	}
	fmt.Printf("SledZig:   protected channel %v, payload %d octets\n", ch, len(payload))
	if isPrintable(payload) {
		fmt.Printf("payload:   %q\n", payload)
	} else {
		fmt.Printf("payload:   % x\n", payload[:min(32, len(payload))])
	}
}

func isPrintable(b []byte) bool {
	for _, c := range b {
		if c > unicode.MaxASCII || (!unicode.IsPrint(rune(c)) && c != '\n') {
			return false
		}
	}
	return len(b) > 0
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
