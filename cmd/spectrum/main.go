// Command spectrum prints the WiFi frequency spectrum under a normal
// payload and under a SledZig payload (the paper's Fig. 5b), as a coarse
// text plot plus per-MHz levels.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"strings"

	"sledzig/internal/core"
	"sledzig/internal/exp"
	"sledzig/internal/wifi"
)

func main() {
	log.SetFlags(0)
	mod := flag.String("mod", "qam16", "modulation: qam16, qam64, qam256")
	ch := flag.Int("ch", 2, "protected overlapped channel (1-4)")
	seed := flag.Int64("seed", 1, "payload seed")
	flag.Parse()

	m, ok := map[string]wifi.Modulation{
		"qam16": wifi.QAM16, "qam64": wifi.QAM64, "qam256": wifi.QAM256,
	}[*mod]
	if !ok {
		log.Fatalf("unknown modulation %q", *mod)
	}
	rate := map[wifi.Modulation]wifi.CodeRate{
		wifi.QAM16: wifi.Rate12, wifi.QAM64: wifi.Rate23, wifi.QAM256: wifi.Rate34,
	}[m]
	if *ch < 1 || *ch > 4 {
		log.Fatalf("channel must be 1-4")
	}
	spec, err := exp.Fig5b(wifi.ConventionPaper, wifi.Mode{Modulation: m, CodeRate: rate}, core.ZigBeeChannel(*ch), *seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(spec)
	fmt.Printf("\nband-power drop in CH%d: %.1f dB\n\n", *ch, spec.BandDropDB())

	// ASCII spectrum: one column per 0.5 MHz, height by dB level.
	fmt.Println("ASCII PSD (each row 3 dB; # = SledZig, . = normal):")
	const buckets = 40
	levels := make([]float64, buckets)
	ref := make([]float64, buckets)
	for i, f := range spec.FreqMHz {
		b := int((f + 10) / 0.5)
		if b < 0 || b >= buckets {
			continue
		}
		levels[b] += math.Pow(10, spec.SledZigDB[i]/10)
		ref[b] += math.Pow(10, spec.NormalDB[i]/10)
	}
	for row := 0; row >= -30; row -= 3 {
		line := make([]byte, buckets)
		for b := range line {
			line[b] = ' '
			if db(ref[b]) >= float64(row) {
				line[b] = '.'
			}
			if db(levels[b]) >= float64(row) {
				line[b] = '#'
			}
		}
		fmt.Printf("%4d dB |%s|\n", row, string(line))
	}
	fmt.Printf("         %s\n", strings.Repeat("-", buckets))
	fmt.Println("         -10 MHz                power spectral density                +10 MHz")
}

func db(v float64) float64 {
	if v <= 0 {
		return -300
	}
	return 10 * math.Log10(v)
}
