// Command tracecheck validates the artifacts the tracing pipeline
// produces — a flight-recorder dump (-dump) and/or a Chrome trace-event
// export (-chrome) — and exits non-zero when either is missing,
// malformed, or carries no usable frame traces. It is the assertion half
// of `make trace-smoke`: cmd/chaos produces the artifacts, tracecheck
// proves they are what docs/observability.md promises.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"sledzig/internal/obs/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracecheck: ")
	dumpPath := flag.String("dump", "", "flight-recorder dump (JSON) to validate")
	chromePath := flag.String("chrome", "", "Chrome trace-event export to validate")
	flag.Parse()
	if *dumpPath == "" && *chromePath == "" {
		log.Fatal("nothing to check: pass -dump and/or -chrome")
	}
	if *dumpPath != "" {
		checkDump(*dumpPath)
	}
	if *chromePath != "" {
		checkChrome(*chromePath)
	}
	fmt.Println("tracecheck: all artifacts valid")
}

// checkDump validates a flight-recorder dump: a reason, at least one
// frame, and every frame carrying a trace ID, a kind, queue-wait/service
// attribution and at least one pipeline stage span.
func checkDump(path string) {
	raw, err := os.ReadFile(path)
	if err != nil {
		log.Fatalf("dump: %v", err)
	}
	var d trace.Dump
	if err := json.Unmarshal(raw, &d); err != nil {
		log.Fatalf("dump %s is not valid JSON: %v", path, err)
	}
	if d.Reason == "" {
		log.Fatalf("dump %s has no reason", path)
	}
	if len(d.Frames) == 0 {
		log.Fatalf("dump %s carries no frames", path)
	}
	withSpans := 0
	for _, f := range d.Frames {
		if f.TraceID == "" || f.Kind == "" {
			log.Fatalf("dump %s: frame missing trace_id/kind: %+v", path, f)
		}
		if f.ServiceNS <= 0 || f.TotalNS < f.ServiceNS || f.QueueWaitNS < 0 {
			log.Fatalf("dump %s: frame %s has inconsistent timing (queue_wait %d, service %d, total %d)",
				path, f.TraceID, f.QueueWaitNS, f.ServiceNS, f.TotalNS)
		}
		if len(f.Spans) > 0 {
			withSpans++
		}
	}
	if withSpans == 0 {
		log.Fatalf("dump %s: no frame carries stage spans", path)
	}
	fmt.Printf("dump %s: reason %q, %d frames (%d with stage spans)\n", path, d.Reason, len(d.Frames), withSpans)
}

// chromeFile mirrors the JSON object WriteChromeTrace emits.
type chromeFile struct {
	TraceEvents []struct {
		Name string  `json:"name"`
		Ph   string  `json:"ph"`
		TS   float64 `json:"ts"`
		Dur  float64 `json:"dur"`
		PID  int     `json:"pid"`
		TID  int     `json:"tid"`
	} `json:"traceEvents"`
}

// checkChrome validates a Chrome trace-event export: parseable, complete
// ("X") events only, and at least one frame slice with nested spans —
// the shape Perfetto and chrome://tracing load.
func checkChrome(path string) {
	raw, err := os.ReadFile(path)
	if err != nil {
		log.Fatalf("chrome trace: %v", err)
	}
	var c chromeFile
	if err := json.Unmarshal(raw, &c); err != nil {
		log.Fatalf("chrome trace %s is not valid JSON: %v", path, err)
	}
	if len(c.TraceEvents) == 0 {
		log.Fatalf("chrome trace %s carries no events", path)
	}
	frames, spans := 0, 0
	for _, ev := range c.TraceEvents {
		if ev.Ph != "X" {
			log.Fatalf("chrome trace %s: event %q has phase %q, want complete events (X)", path, ev.Name, ev.Ph)
		}
		if ev.Dur < 0 || ev.TS < 0 {
			log.Fatalf("chrome trace %s: event %q has negative timestamp/duration", path, ev.Name)
		}
		switch ev.Name {
		case "encode", "decode", "waveform":
			frames++
		case "queue_wait":
		default:
			spans++
		}
	}
	if frames == 0 {
		log.Fatalf("chrome trace %s: no frame slices", path)
	}
	if spans == 0 {
		log.Fatalf("chrome trace %s: no stage spans", path)
	}
	fmt.Printf("chrome trace %s: %d events (%d frames, %d stage spans)\n", path, len(c.TraceEvents), frames, spans)
}
