// Command sledvet is the project's static-analysis suite: eleven custom
// analyzers that turn SledZig's pipeline conventions into compile-loop
// checks. Six are syntactic (typed facade errors, pooled-scratch hygiene,
// literal metric names, literal trace span names, seeded randomness, no
// float equality in DSP code); five are CFG/dataflow checks (lock/unlock
// balance, goroutine exit reachability, //sledzig:noalloc hot-path
// contracts, trace-span Begin/End pairing, atomic/plain access mixing).
//
// Standalone:
//
//	go run ./cmd/sledvet ./...              # analyze package patterns
//	go run ./cmd/sledvet -json ./...        # machine-readable diagnostics
//	go run ./cmd/sledvet -sarif out.sarif ./...
//	go run ./cmd/sledvet -check-json report.json   # validate an artifact
//
// As a go vet tool (single-unit protocol, incremental and build-cached):
//
//	go build -o /tmp/sledvet ./cmd/sledvet
//	go vet -vettool=/tmp/sledvet ./...
//
// Diagnostics can be silenced per line with an audited directive:
//
//	//sledvet:ignore <analyzer>[,<analyzer>] <reason>
//
// See docs/static-analysis.md for each analyzer's invariant and the JSON
// output schema.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"sledzig/internal/analysis"
	"sledzig/internal/analysis/all"
	"sledzig/internal/analysis/driver"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sledvet: ")

	suite := all.Analyzers()
	for _, a := range suite {
		prefix := a.Name + "."
		a.Flags.VisitAll(func(f *flag.Flag) {
			flag.Var(f.Value, prefix+f.Name, f.Usage)
		})
	}
	printflags := flag.Bool("flags", false, "print analyzer flags in JSON (go vet protocol)")
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON report on stdout (schema in docs/static-analysis.md)")
	sarifPath := flag.String("sarif", "", "also write diagnostics as SARIF 2.1.0 to `file`")
	checkJSON := flag.String("check-json", "", "validate `file` against the sledvet JSON report schema and exit")
	flag.Var(versionFlag{}, "V", "print version and exit (go vet protocol)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: sledvet [flags] [package pattern ...]\n")
		fmt.Fprintf(os.Stderr, "       sledvet unit.cfg   (go vet -vettool protocol)\n\nAnalyzers:\n")
		for _, a := range suite {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, strings.SplitN(a.Doc, "\n", 2)[0])
		}
		fmt.Fprintf(os.Stderr, "\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *printflags {
		printFlags()
		return
	}
	if *checkJSON != "" {
		os.Exit(runCheckJSON(*checkJSON, os.Stdout, os.Stderr))
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		driver.RunUnit(args[0], suite) // exits
		return
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	os.Exit(runStandalone(suite, args, *jsonOut, *sarifPath, os.Stdout, os.Stderr))
}

// runStandalone loads the patterns, runs the suite, and renders text or
// JSON (plus optional SARIF). Exit codes: 0 clean, 1 diagnostics found,
// 2 the run itself failed (bad pattern, unbuildable target, I/O error).
func runStandalone(suite []*analysis.Analyzer, patterns []string, jsonOut bool, sarifPath string, stdout, stderr io.Writer) int {
	pkgs, err := driver.Load("", patterns)
	if err != nil {
		fmt.Fprintf(stderr, "sledvet: %v\n", err)
		return 2
	}
	diags, err := driver.Run(pkgs, suite)
	if err != nil {
		fmt.Fprintf(stderr, "sledvet: %v\n", err)
		return 2
	}
	if wd, err := os.Getwd(); err == nil {
		driver.Relativize(diags, wd)
	}
	if sarifPath != "" {
		f, err := os.Create(sarifPath)
		if err != nil {
			fmt.Fprintf(stderr, "sledvet: %v\n", err)
			return 2
		}
		werr := driver.WriteSARIF(f, diags, suite)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(stderr, "sledvet: writing %s: %v\n", sarifPath, werr)
			return 2
		}
	}
	if jsonOut {
		if err := driver.WriteJSON(stdout, diags); err != nil {
			fmt.Fprintf(stderr, "sledvet: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintf(stdout, "%s\n", d)
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// runCheckJSON validates a previously produced JSON artifact, so CI can
// prove the emitter and the documented schema agree.
func runCheckJSON(path string, stdout, stderr io.Writer) int {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(stderr, "sledvet: %v\n", err)
		return 2
	}
	defer f.Close()
	n, err := driver.ValidateJSON(f)
	if err != nil {
		fmt.Fprintf(stderr, "sledvet: %s: %v\n", path, err)
		return 1
	}
	fmt.Fprintf(stdout, "sledvet: %s: valid version-1 report, %d diagnostic(s)\n", path, n)
	return 0
}

// printFlags emits the flag-description JSON the go command requests with
// -flags before passing analyzer flags through.
func printFlags() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var flags []jsonFlag
	flag.VisitAll(func(f *flag.Flag) {
		b, ok := f.Value.(interface{ IsBoolFlag() bool })
		flags = append(flags, jsonFlag{f.Name, ok && b.IsBoolFlag(), f.Usage})
	})
	data, err := json.MarshalIndent(flags, "", "\t")
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
}

// versionFlag implements the -V=full handshake go vet uses to fingerprint
// the tool for build caching: the output must change when the binary does,
// so it embeds the executable's content hash.
type versionFlag struct{}

func (versionFlag) IsBoolFlag() bool { return true }
func (versionFlag) Get() any         { return nil }
func (versionFlag) String() string   { return "" }
func (versionFlag) Set(s string) error {
	if s != "full" {
		log.Fatalf("unsupported flag value: -V=%s (use -V=full)", s)
	}
	progname, err := os.Executable()
	if err != nil {
		return err
	}
	f, err := os.Open(progname)
	if err != nil {
		log.Fatal(err)
	}
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", progname, string(h.Sum(nil)))
	os.Exit(0)
	return nil
}
