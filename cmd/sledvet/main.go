// Command sledvet is the project's static-analysis suite: six custom
// analyzers that turn SledZig's pipeline conventions (typed facade errors,
// pooled-scratch hygiene, literal metric names, literal trace span names,
// seeded randomness, no float equality in DSP code) into compile-loop
// checks.
//
// Standalone:
//
//	go run ./cmd/sledvet ./...              # analyze package patterns
//	go run ./cmd/sledvet -floateq.allowzero=false ./internal/dsp
//
// As a go vet tool (single-unit protocol, incremental and build-cached):
//
//	go build -o /tmp/sledvet ./cmd/sledvet
//	go vet -vettool=/tmp/sledvet ./...
//
// Diagnostics can be silenced per line with an audited directive:
//
//	//sledvet:ignore <analyzer>[,<analyzer>] <reason>
//
// See docs/static-analysis.md for each analyzer's invariant.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"sledzig/internal/analysis"
	"sledzig/internal/analysis/driver"
	"sledzig/internal/analysis/floateq"
	"sledzig/internal/analysis/metriclit"
	"sledzig/internal/analysis/poolescape"
	"sledzig/internal/analysis/seededrand"
	"sledzig/internal/analysis/spanlit"
	"sledzig/internal/analysis/typederr"
)

func analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		typederr.Analyzer,
		poolescape.Analyzer,
		metriclit.Analyzer,
		spanlit.Analyzer,
		seededrand.Analyzer,
		floateq.Analyzer,
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("sledvet: ")

	all := analyzers()
	for _, a := range all {
		prefix := a.Name + "."
		a.Flags.VisitAll(func(f *flag.Flag) {
			flag.Var(f.Value, prefix+f.Name, f.Usage)
		})
	}
	printflags := flag.Bool("flags", false, "print analyzer flags in JSON (go vet protocol)")
	flag.Var(versionFlag{}, "V", "print version and exit (go vet protocol)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: sledvet [flags] [package pattern ...]\n")
		fmt.Fprintf(os.Stderr, "       sledvet unit.cfg   (go vet -vettool protocol)\n\nAnalyzers:\n")
		for _, a := range all {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, strings.SplitN(a.Doc, "\n", 2)[0])
		}
		fmt.Fprintf(os.Stderr, "\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *printflags {
		printFlags()
		return
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		driver.RunUnit(args[0], all) // exits
		return
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}

	pkgs, err := driver.Load("", args)
	if err != nil {
		log.Fatal(err)
	}
	diags, err := driver.Run(pkgs, all)
	if err != nil {
		log.Fatal(err)
	}
	if wd, err := os.Getwd(); err == nil {
		driver.Relativize(diags, wd)
	}
	for _, d := range diags {
		fmt.Printf("%s\n", d)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// printFlags emits the flag-description JSON the go command requests with
// -flags before passing analyzer flags through.
func printFlags() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var flags []jsonFlag
	flag.VisitAll(func(f *flag.Flag) {
		b, ok := f.Value.(interface{ IsBoolFlag() bool })
		flags = append(flags, jsonFlag{f.Name, ok && b.IsBoolFlag(), f.Usage})
	})
	data, err := json.MarshalIndent(flags, "", "\t")
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
}

// versionFlag implements the -V=full handshake go vet uses to fingerprint
// the tool for build caching: the output must change when the binary does,
// so it embeds the executable's content hash.
type versionFlag struct{}

func (versionFlag) IsBoolFlag() bool { return true }
func (versionFlag) Get() any         { return nil }
func (versionFlag) String() string   { return "" }
func (versionFlag) Set(s string) error {
	if s != "full" {
		log.Fatalf("unsupported flag value: -V=%s (use -V=full)", s)
	}
	progname, err := os.Executable()
	if err != nil {
		return err
	}
	f, err := os.Open(progname)
	if err != nil {
		log.Fatal(err)
	}
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", progname, string(h.Sum(nil)))
	os.Exit(0)
	return nil
}
