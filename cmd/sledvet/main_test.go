package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sledzig/internal/analysis/all"
	"sledzig/internal/analysis/driver"
)

// The standalone driver must fail loudly — a distinct exit code and a
// message on stderr — when the target cannot be loaded, never exit 0
// after analyzing nothing.
func TestStandaloneFailsLoudlyOnBadPattern(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := runStandalone(all.Analyzers(), []string{"./nosuchdir/..."}, false, "", &stdout, &stderr)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "sledvet:") {
		t.Errorf("stderr %q lacks a sledvet-prefixed error", stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("unexpected stdout: %q", stdout.String())
	}
}

// A clean run with -json must produce a report that -check-json accepts.
func TestStandaloneJSONIsSelfValidating(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := runStandalone(all.Analyzers(), []string{"sledzig/internal/analysis/all"}, true, "", &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr: %s\nstdout: %s", code, stderr.String(), stdout.String())
	}
	if n, err := driver.ValidateJSON(bytes.NewReader(stdout.Bytes())); err != nil || n != 0 {
		t.Errorf("ValidateJSON = (%d, %v), want (0, nil); report:\n%s", n, err, stdout.String())
	}
}

func TestCheckJSONModes(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(good, []byte(`{"version":1,"diagnostics":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(bad, []byte(`{"version":9,"diagnostics":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := runCheckJSON(good, &stdout, &stderr); code != 0 {
		t.Errorf("valid report: exit %d, stderr %q", code, stderr.String())
	}
	stdout.Reset()
	stderr.Reset()
	if code := runCheckJSON(bad, &stdout, &stderr); code != 1 {
		t.Errorf("invalid report: exit %d, want 1", code)
	}
	if code := runCheckJSON(filepath.Join(dir, "absent.json"), &stdout, &stderr); code != 2 {
		t.Errorf("missing file: exit %d, want 2", code)
	}
}
