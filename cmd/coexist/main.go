// Command coexist runs one WiFi/ZigBee coexistence scenario and reports
// both networks' performance, with and without SledZig.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sync"

	"sledzig"
)

func main() {
	log.SetFlags(0)
	mod := flag.String("mod", "qam64", "modulation: qam16, qam64, qam256")
	codecName := flag.String("codec", "", "coexistence codec for the protected variant: sledzig (default), ook-ctc, ofdmfi")
	ch := flag.Int("ch", 3, "protected overlapped channel (1-4)")
	dwz := flag.Float64("dwz", 4, "WiFi Tx to ZigBee Rx distance (m)")
	dz := flag.Float64("dz", 1, "ZigBee link distance (m)")
	duty := flag.Float64("duty", 1, "WiFi duty ratio (1 = saturated)")
	duration := flag.Float64("t", 10, "simulated seconds")
	seed := flag.Int64("seed", 1, "random seed")
	energyCCA := flag.Bool("energy-cca", true, "ZigBee CCA uses energy detect")
	nodes := flag.Int("nodes", 1, "number of contending ZigBee transmitters")
	acks := flag.Bool("acks", false, "use 802.15.4 acknowledgments with retries")
	asJSON := flag.Bool("json", false, "emit machine-readable JSON instead of text")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address (keeps the process alive after the run)")
	traceSample := flag.Int("trace-sample", 0, "enable per-frame tracing, head-sampling every Nth frame; retained traces appear on /debug/traces")
	workers := flag.Int("workers", 1, "scenario variants simulated concurrently (the normal and SledZig runs are independent; >1 runs them in parallel)")
	flag.Parse()

	var metrics *sledzig.Metrics
	if *metricsAddr != "" {
		metrics = sledzig.NewMetrics()
		sledzig.SetDefaultMetrics(metrics)
		if *traceSample > 0 {
			sledzig.SetDefaultTracer(sledzig.NewTracer(sledzig.TraceConfig{SampleEvery: *traceSample}))
		}
		bound, err := metrics.Serve(*metricsAddr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "metrics: http://%s/metrics (expvar /debug/vars, pprof /debug/pprof/)\n", bound)
		if *traceSample > 0 {
			fmt.Fprintf(os.Stderr, "tracing: http://%s/debug/traces (add ?format=chrome for Perfetto)\n", bound)
		}
	}

	m, ok := map[string]sledzig.Modulation{
		"qam16": sledzig.QAM16, "qam64": sledzig.QAM64, "qam256": sledzig.QAM256,
	}[*mod]
	if !ok {
		log.Fatalf("unknown modulation %q", *mod)
	}
	rate := map[sledzig.Modulation]sledzig.CodeRate{
		sledzig.QAM16: sledzig.Rate12, sledzig.QAM64: sledzig.Rate23, sledzig.QAM256: sledzig.Rate34,
	}[m]
	if *ch < 1 || *ch > 4 {
		log.Fatalf("channel must be 1-4")
	}

	base := sledzig.CoexistenceConfig{
		Modulation:  m,
		CodeRate:    rate,
		Codec:       *codecName,
		Channel:     sledzig.Channel(*ch),
		DWZ:         *dwz,
		DZ:          *dz,
		DutyRatio:   *duty,
		Duration:    *duration,
		Seed:        *seed,
		EnergyCCA:   *energyCCA,
		ZigBeeNodes: *nodes,
		UseAcks:     *acks,
	}

	if !*asJSON {
		fmt.Printf("scenario: %v on CH%d, d_WZ=%.1f m, d_Z=%.1f m, WiFi duty %.0f%%\n\n",
			m, *ch, *dwz, *dz, *duty*100)
	}
	// The two variants are independent simulations; -workers > 1 runs them
	// concurrently. Output order stays fixed (normal first) either way.
	variants := []bool{false, true}
	variantRes := make([]*sledzig.CoexistenceResult, len(variants))
	variantErr := make([]error, len(variants))
	sem := make(chan struct{}, max(1, *workers))
	var wg sync.WaitGroup
	for i, useSled := range variants {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, useSled bool) {
			defer wg.Done()
			defer func() { <-sem }()
			cfg := base
			cfg.UseSledZig = useSled
			variantRes[i], variantErr[i] = sledzig.SimulateCoexistence(cfg)
		}(i, useSled)
	}
	wg.Wait()

	results := map[string]*sledzig.CoexistenceResult{}
	for i, useSled := range variants {
		if variantErr[i] != nil {
			log.Fatal(variantErr[i])
		}
		res := variantRes[i]
		name := "normal WiFi"
		if useSled {
			name = "SledZig    "
			if *codecName != "" && *codecName != "sledzig" {
				name = fmt.Sprintf("%-11s", *codecName)
			}
		}
		if *asJSON {
			key := "normal"
			if useSled {
				key = "sledzig"
			}
			results[key] = res
			continue
		}
		fmt.Printf("%s: ZigBee %6.1f kbit/s (%d sent, %d ok, %d corrupted, %d CCA drops, %d collisions, %d retries)\n",
			name, res.ZigBeeThroughputBps/1e3,
			res.ZigBeeFramesSent, res.ZigBeeDelivered, res.ZigBeeCorrupted,
			res.ZigBeeCCADrops, res.ZigBeeCollisions, res.ZigBeeRetries)
		fmt.Printf("             WiFi   %d frames, %.0f%% airtime, %d failed, goodput factor %.3f, in-band RSSI %.1f dBm\n",
			res.WiFiFramesSent, 100*res.WiFiAirtimeFraction, res.WiFiFramesFailed,
			res.WiFiGoodputFraction, res.InBandRSSIDBm)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			log.Fatal(err)
		}
	}
	if metrics != nil {
		// Keep serving so the run's metrics and profiles stay scrapeable;
		// Ctrl-C exits.
		fmt.Fprintln(os.Stderr, "run complete; still serving metrics — interrupt to exit")
		stop := make(chan os.Signal, 1)
		signal.Notify(stop, os.Interrupt)
		<-stop
	}
}
