// Command selfcheck runs a fast cross-module sanity suite — the smoke
// test a user runs right after cloning, without waiting for the full
// go test sweep. Exit status 0 means every check passed.
package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"time"

	"sledzig"
	"sledzig/internal/core"
	"sledzig/internal/exp"
	"sledzig/internal/wifi"
)

func main() {
	// Observe every check: the snapshot at the end tells a failing run
	// which pipeline stage diverged (and how long each took), not just
	// which check.
	metrics := sledzig.NewMetrics()
	sledzig.SetDefaultMetrics(metrics)
	// Trace every frame too: the counters at the end prove the tracing
	// path itself works (frames started == finished, retention firing).
	tracer := sledzig.NewTracer(sledzig.TraceConfig{SampleEvery: 1})
	sledzig.SetDefaultTracer(tracer)

	failures := 0
	check := func(name string, fn func() error) {
		start := time.Now()
		err := fn()
		if err != nil {
			failures++
			fmt.Printf("  FAIL  %-42s %v\n", name, err)
			return
		}
		fmt.Printf("  ok    %-42s %s\n", name, time.Since(start).Round(time.Millisecond))
	}

	fmt.Println("sledzig self-check")
	check("theory: power reduction constants", func() error {
		for m, want := range map[sledzig.Modulation]float64{
			sledzig.QAM16: 7.0, sledzig.QAM64: 13.2, sledzig.QAM256: 19.3,
		} {
			got := sledzig.PowerReductionDB(m)
			if got < want-0.05 || got > want+0.05 {
				return fmt.Errorf("%v: %.2f dB, want %.1f", m, got, want)
			}
		}
		return nil
	})

	check("paper Table II positions (exact)", func() error {
		got, want, err := exp.TableII(wifi.ConventionPaper)
		if err != nil {
			return err
		}
		if len(got) != len(want) {
			return fmt.Errorf("%d positions, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				return fmt.Errorf("position %d: %d vs %d", i, got[i], want[i])
			}
		}
		return nil
	})

	check("encode -> waveform -> decode round trip", func() error {
		enc, err := sledzig.NewEncoder(sledzig.Config{
			Modulation: sledzig.QAM64, CodeRate: sledzig.Rate34, Channel: sledzig.CH2,
		})
		if err != nil {
			return err
		}
		payload := []byte("selfcheck payload")
		frame, err := enc.Encode(payload)
		if err != nil {
			return err
		}
		wave, err := frame.Waveform()
		if err != nil {
			return err
		}
		dec, err := sledzig.NewDecoder(sledzig.Config{})
		if err != nil {
			return err
		}
		res, err := dec.Decode(wave)
		if err != nil {
			return err
		}
		if res.Channel != sledzig.CH2 || string(res.Payload) != string(payload) {
			return fmt.Errorf("round trip mismatch (channel %v)", res.Channel)
		}
		return nil
	})

	check("band suppression on real waveforms", func() error {
		payload := make([]byte, 400)
		rand.New(rand.NewSource(1)).Read(payload)
		drop, err := sledzig.MeasureBandReduction(sledzig.Config{
			Modulation: sledzig.QAM256, CodeRate: sledzig.Rate34, Channel: sledzig.CH4,
		}, payload)
		if err != nil {
			return err
		}
		if drop < 12 {
			return fmt.Errorf("only %.1f dB", drop)
		}
		return nil
	})

	check("coexistence simulation (2 s)", func() error {
		res, err := sledzig.SimulateCoexistence(sledzig.CoexistenceConfig{
			Modulation: sledzig.QAM256, CodeRate: sledzig.Rate34, Channel: sledzig.CH3,
			UseSledZig: true, DWZ: 4, DZ: 1, DutyRatio: 1, Duration: 2, Seed: 1, EnergyCCA: true,
		})
		if err != nil {
			return err
		}
		if res.ZigBeeThroughputBps < 30e3 {
			return fmt.Errorf("SledZig throughput only %.1f kbit/s", res.ZigBeeThroughputBps/1e3)
		}
		return nil
	})

	check("waveform-level mixing (PER flip)", func() error {
		res, err := exp.RunPhyLevel(exp.PhyLevelConfig{Seed: 1, Trials: 4})
		if err != nil {
			return err
		}
		if res.NormalPER < 0.75 || res.SledZigPER > 0.25 {
			return fmt.Errorf("PER normal %.2f / sledzig %.2f", res.NormalPER, res.SledZigPER)
		}
		return nil
	})

	check("engine pool round trip (traced)", func() error {
		eng, err := sledzig.NewEngine(sledzig.EngineConfig{
			Config: sledzig.Config{
				Modulation: sledzig.QAM64, CodeRate: sledzig.Rate34, Channel: sledzig.CH1,
			},
			Workers: 2,
		})
		if err != nil {
			return err
		}
		defer eng.Close()
		payloads := [][]byte{[]byte("engine frame one"), []byte("engine frame two"), []byte("engine frame three")}
		frames, err := eng.EncodeBatch(context.Background(), payloads)
		if err != nil {
			return err
		}
		waves := make([][]complex128, len(frames))
		for i, f := range frames {
			if waves[i], err = f.Waveform(); err != nil {
				return err
			}
		}
		results, err := eng.DecodeBatch(context.Background(), waves)
		if err != nil {
			return err
		}
		for i, r := range results {
			if !bytes.Equal(r.Payload, payloads[i]) {
				return fmt.Errorf("frame %d round trip mismatch", i)
			}
		}
		// Every pool frame must have left a retained trace with pipeline
		// spans and worker attribution.
		traced := 0
		for _, s := range tracer.Retained() {
			if s.Worker >= 0 && len(s.Spans) > 0 {
				traced++
			}
		}
		if traced < 2*len(payloads) {
			return fmt.Errorf("only %d pool frames traced, want >= %d", traced, 2*len(payloads))
		}
		return nil
	})

	check("reliability kernel (admit, health, drain)", func() error {
		eng, err := sledzig.NewEngine(sledzig.EngineConfig{
			Config: sledzig.Config{
				Modulation: sledzig.QAM16, CodeRate: sledzig.Rate12, Channel: sledzig.CH2,
			},
			Workers:      2,
			MaxQueueWait: 100 * time.Millisecond,
			MaxInflight:  8,
			Breaker: sledzig.BreakerConfig{
				Window: 16, MinSamples: 4, FailureRate: 0.5, Cooldown: time.Second, Probes: 2,
			},
		})
		if err != nil {
			return err
		}
		if outs := eng.EncodeEach(context.Background(), [][]byte{[]byte("reliability probe")}); outs[0].Err != nil {
			return outs[0].Err
		}
		if h := eng.Health(); h != sledzig.EngineHealthy {
			return fmt.Errorf("health = %s, want healthy", h)
		}
		rep := eng.HealthReport()
		if rep.Breaker != "closed" || rep.Shed.Total() != 0 {
			return fmt.Errorf("report = %+v, want closed breaker and zero sheds", rep)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if dr := eng.Drain(ctx); !dr.Clean {
			return fmt.Errorf("drain not clean: %+v", dr)
		}
		if h := eng.Health(); h != sledzig.EngineClosed {
			return fmt.Errorf("post-drain health = %s, want closed", h)
		}
		if outs := eng.EncodeEach(context.Background(), [][]byte{[]byte("late")}); !errors.Is(outs[0].Err, sledzig.ErrEngineClosed) {
			return fmt.Errorf("post-drain submit err = %v, want ErrEngineClosed", outs[0].Err)
		}
		return nil
	})

	check("channel sensing", func() error {
		rng := rand.New(rand.NewSource(2))
		capture := make([]complex128, 1<<14)
		for i := range capture {
			capture[i] = complex(rng.NormFloat64(), rng.NormFloat64()) * 1e-5
		}
		zb, err := core.ChannelSensor{}.BandLevels(capture)
		if err != nil {
			return err
		}
		if len(zb) != 4 {
			return fmt.Errorf("%d band levels", len(zb))
		}
		return nil
	})

	printSnapshot(metrics)

	if failures > 0 {
		fmt.Printf("%d check(s) FAILED\n", failures)
		os.Exit(1)
	}
	fmt.Println("all checks passed")
}

// printSnapshot summarizes the pipeline's per-stage activity and any
// failure counters accumulated during the checks.
func printSnapshot(metrics *sledzig.Metrics) {
	snap := metrics.Snapshot()
	fmt.Println("\npipeline stage snapshot (busiest first):")
	for _, st := range snap.TopStages(12) {
		fmt.Printf("  %-28s %6d calls  mean %9s  total %9s",
			st.Name, st.Calls, fmtSecs(st.MeanSec), fmtSecs(st.TotalSec))
		if st.Errors > 0 {
			fmt.Printf("  errors %d", st.Errors)
		}
		fmt.Println()
	}
	var fails []string
	for name, v := range snap.Counters {
		if strings.Contains(name, ".fail") && v > 0 {
			fails = append(fails, fmt.Sprintf("  %-40s %d", name, v))
		}
	}
	if len(fails) > 0 {
		sort.Strings(fails)
		fmt.Println("failure counters:")
		for _, f := range fails {
			fmt.Println(f)
		}
	}
	// Reliability and tracing counters always print (including zeros):
	// frame_panics/frame_timeouts at zero is itself the health signal, and
	// the trace counters prove the tracing path exercised every frame.
	fmt.Println("reliability and trace counters:")
	reliability := []string{
		"engine.frame_panics", "engine.frame_timeouts",
		"engine.shed.queue_wait", "engine.shed.inflight",
		"engine.shed.abandoned_workers", "engine.shed.circuit_open",
		"engine.shed.draining", "engine.breaker.opened",
		"engine.breaker.reclosed", "engine.drains",
		"trace.frames.started", "trace.frames.finished",
		"trace.retained.head", "trace.retained.error", "trace.retained.slow",
		"trace.flight.dumps", "trace.export.errors",
	}
	for _, name := range reliability {
		fmt.Printf("  %-40s %d\n", name, snap.Counters[name])
	}
}

func fmtSecs(s float64) string {
	return time.Duration(s * float64(time.Second)).Round(time.Microsecond).String()
}
