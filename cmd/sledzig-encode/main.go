// Command sledzig-encode encodes a payload with SledZig and reports the
// frame's structure: extra bits, overhead, airtime, and the measured
// power drop inside the protected ZigBee channel.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"sledzig"
	"sledzig/internal/iq"
)

func main() {
	log.SetFlags(0)
	mod := flag.String("mod", "qam64", "modulation: qam16, qam64, qam256")
	rate := flag.String("rate", "3/4", "coding rate: 1/2, 2/3, 3/4, 5/6")
	ch := flag.Int("ch", 2, "protected overlapped channel (1-4)")
	text := flag.String("payload", "", "payload text (default: random bytes)")
	size := flag.Int("len", 200, "random payload length when -payload is empty")
	out := flag.String("out", "", "write the PPDU waveform to this .cf32 file (GNU Radio format, 20 MS/s)")
	flag.Parse()

	m, ok := map[string]sledzig.Modulation{
		"qam16": sledzig.QAM16, "qam64": sledzig.QAM64, "qam256": sledzig.QAM256,
	}[*mod]
	if !ok {
		log.Fatalf("unknown modulation %q", *mod)
	}
	r, ok := map[string]sledzig.CodeRate{
		"1/2": sledzig.Rate12, "2/3": sledzig.Rate23, "3/4": sledzig.Rate34, "5/6": sledzig.Rate56,
	}[*rate]
	if !ok {
		log.Fatalf("unknown rate %q", *rate)
	}
	if *ch < 1 || *ch > 4 {
		log.Fatalf("channel must be 1-4")
	}
	cfg := sledzig.Config{Modulation: m, CodeRate: r, Channel: sledzig.Channel(*ch)}

	payload := []byte(*text)
	if len(payload) == 0 {
		payload = make([]byte, *size)
		rand.New(rand.NewSource(1)).Read(payload)
	}

	enc, err := sledzig.NewEncoder(cfg)
	if err != nil {
		log.Fatal(err)
	}
	frame, err := enc.Encode(payload)
	if err != nil {
		log.Fatal(err)
	}
	drop, err := sledzig.MeasureBandReduction(cfg, payload)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("mode:             %v r=%v, protecting CH%d\n", m, r, *ch)
	fmt.Printf("payload:          %d bytes\n", len(payload))
	fmt.Printf("frame:            %d OFDM symbols, %.0f us airtime\n", frame.NumSymbols(), frame.AirtimeSeconds()*1e6)
	fmt.Printf("extra bits:       %d total (%d per symbol)\n", frame.ExtraBits(), enc.ExtraBitsPerSymbol())
	fmt.Printf("WiFi overhead:    %.2f%%\n", 100*enc.OverheadFraction())
	fmt.Printf("in-channel drop:  %.1f dB (measured from the generated waveform)\n", drop)

	wave, err := frame.Waveform()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("waveform:         %d samples at 20 MS/s\n", len(wave))
	if *out != "" {
		toFile := append([]complex128(nil), wave...)
		iq.NormalizePeak(toFile, 0.8)
		if err := iq.WriteFile(*out, toFile); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("written:          %s (cf32, peak 0.8 — ready for a USRP sink)\n", *out)
	}

	// Round-trip check so the tool doubles as a self-test.
	dec, err := sledzig.NewDecoder(sledzig.Config{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := dec.Decode(wave)
	if err != nil {
		log.Fatal(err)
	}
	got, detected := res.Payload, res.Channel
	ok = len(got) == len(payload)
	for i := range payload {
		if !ok || got[i] != payload[i] {
			ok = false
			break
		}
	}
	if !ok {
		fmt.Fprintln(os.Stderr, "round trip FAILED")
		os.Exit(1)
	}
	fmt.Printf("round trip:       ok (receiver detected %v)\n", detected)
}
