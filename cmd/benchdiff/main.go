// Command benchdiff compares two `go test -bench -benchmem` outputs and
// fails when allocations per operation regress beyond a tolerance. It backs
// `make bench-compare`, which guards the pooled hot paths (EncodeTo,
// AppendWaveform, the engine) against accidental allocation creep.
//
// Only allocs/op is gated: it is deterministic across machines, unlike
// ns/op, so a checked-in baseline stays meaningful on any hardware.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
)

// result is one parsed benchmark line.
type result struct {
	nsPerOp     float64
	allocsPerOp float64
	hasAllocs   bool
}

func main() {
	log.SetFlags(0)
	baselinePath := flag.String("baseline", "bench.baseline.txt", "checked-in baseline benchmark output")
	currentPath := flag.String("current", "bench.current.txt", "fresh benchmark output to compare")
	relTol := flag.Float64("rel", 0.10, "relative allocs/op increase tolerated")
	absTol := flag.Float64("abs", 2, "absolute allocs/op increase always tolerated (shields tiny counts from ratio noise)")
	flag.Parse()

	base, err := parseFile(*baselinePath)
	if err != nil {
		log.Fatalf("baseline: %v", err)
	}
	cur, err := parseFile(*currentPath)
	if err != nil {
		log.Fatalf("current: %v", err)
	}
	if len(base) == 0 {
		log.Fatalf("baseline %s holds no benchmark lines", *baselinePath)
	}

	failed := false
	for name, b := range base {
		c, ok := cur[name]
		if !ok {
			fmt.Printf("MISSING  %-40s (in baseline, not in current run)\n", name)
			failed = true
			continue
		}
		if !b.hasAllocs || !c.hasAllocs {
			continue
		}
		limit := b.allocsPerOp*(1+*relTol) + *absTol
		status := "ok"
		if c.allocsPerOp > limit {
			status = "REGRESSED"
			failed = true
		}
		fmt.Printf("%-9s %-40s allocs/op %8.0f -> %8.0f   ns/op %10.0f -> %10.0f\n",
			status, name, b.allocsPerOp, c.allocsPerOp, b.nsPerOp, c.nsPerOp)
	}
	for name := range cur {
		if _, ok := base[name]; !ok {
			fmt.Printf("new       %-40s (not in baseline; add it with `make bench-baseline`)\n", name)
		}
	}
	if failed {
		fmt.Println("\nallocation regression detected — if intentional, refresh the baseline with `make bench-baseline`")
		os.Exit(1)
	}
}

// parseFile extracts Benchmark lines from `go test -bench -benchmem`
// output, keyed by name with the -<GOMAXPROCS> suffix stripped.
func parseFile(path string) (map[string]result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string]result{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		var r result
		for i := 2; i+1 < len(fields); i++ {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				r.nsPerOp = v
			case "allocs/op":
				r.allocsPerOp = v
				r.hasAllocs = true
			}
		}
		out[name] = r
	}
	return out, sc.Err()
}
