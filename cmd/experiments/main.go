// Command experiments regenerates every table and figure of the SledZig
// paper's evaluation section and prints each next to the values the paper
// reports. Run with -quick for a fast pass (shorter simulations).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"sledzig"
	"sledzig/internal/baseline"
	"sledzig/internal/core"
	"sledzig/internal/exp"
	"sledzig/internal/ht40"
	"sledzig/internal/obs"
	"sledzig/internal/wifi"
)

// manifest is the machine-readable record of one experiments run, written
// next to the text output so benchmark trajectories can be reproduced:
// the exact configuration, toolchain, wall time and the final metrics
// snapshot of the whole pipeline.
type manifest struct {
	Command   string            `json:"command"`
	Config    map[string]string `json:"config"`
	Seed      int64             `json:"seed"`
	GoVersion string            `json:"go_version"`
	GOOS      string            `json:"goos"`
	GOARCH    string            `json:"goarch"`
	StartTime time.Time         `json:"start_time"`
	WallSecs  float64           `json:"wall_seconds"`
	Failed    []string          `json:"failed,omitempty"`
	Metrics   obs.Snapshot      `json:"metrics"`
}

func main() {
	log.SetFlags(0)
	quick := flag.Bool("quick", false, "shorter simulations (less stable statistics)")
	seed := flag.Int64("seed", 1, "random seed for all experiments")
	only := flag.String("only", "", "run a single experiment (theory, table2, table34, minsnr, fig5b, fig11..fig17, baselines, codecs, fleet, ht40, ccamode, percurve, phylevel, engine)")
	codecName := flag.String("codec", "", "restrict the codecs experiment to one backend (sledzig, ook-ctc, ofdmfi)")
	codecManifest := flag.String("codec-manifest", "", "write the codecs experiment's comparison rows as JSON to this file")
	manifestPath := flag.String("manifest", "", "write a JSON run manifest (config, seed, go version, wall time, metrics snapshot) to this file")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address while the experiments run")
	traceJSONL := flag.String("trace-jsonl", "", "enable per-frame tracing and stream retained frame traces here as JSON lines")
	traceSample := flag.Int("trace-sample", 256, "with tracing on, head-sample every Nth frame (failed frames are always retained)")
	workers := flag.Int("workers", 0, "goroutines for parallel sweeps and the engine experiment (0 = all cores)")
	flag.Parse()

	if *workers > 0 {
		// The sweep helpers size their fan-out from GOMAXPROCS, so one
		// knob caps every parallel stage of the run.
		runtime.GOMAXPROCS(*workers)
	}

	metrics := sledzig.NewMetrics()
	sledzig.SetDefaultMetrics(metrics)
	var traceOut *os.File
	var traceExp *sledzig.TraceJSONL
	if *traceJSONL != "" {
		f, err := os.Create(*traceJSONL)
		if err != nil {
			log.Fatal(err)
		}
		traceOut = f
		traceExp = sledzig.NewTraceJSONL(f)
		tracer := sledzig.NewTracer(sledzig.TraceConfig{SampleEvery: *traceSample})
		tracer.AddExporter(traceExp)
		sledzig.SetDefaultTracer(tracer)
	}
	if *metricsAddr != "" {
		bound, err := metrics.Serve(*metricsAddr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "metrics: http://%s/metrics (expvar /debug/vars, pprof /debug/pprof/)\n", bound)
	}
	start := time.Now()
	var failed []string

	conv := wifi.ConventionPaper
	opts := exp.ThroughputOptions{Convention: conv, Seed: *seed, Duration: 10}
	runs := 10
	if *quick {
		opts.Duration = 4
		runs = 4
	}

	run := func(name string, fn func() error) {
		if *only != "" && *only != name {
			return
		}
		fmt.Printf("==================== %s ====================\n", name)
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", name, err)
			failed = append(failed, name)
			return
		}
		fmt.Println()
	}

	run("theory", func() error {
		fmt.Println("Section III-B — theoretical per-subcarrier power reduction P_avg/P_low")
		for _, r := range exp.TheoreticalReductions() {
			fmt.Printf("  %-8v computed %5.1f dB   paper %5.1f dB\n", r.Modulation, r.ComputedDB, r.PaperDB)
		}
		return nil
	})

	run("table2", func() error {
		got, want, err := exp.TableII(conv)
		if err != nil {
			return err
		}
		fmt.Println("Table II — significant-bit positions, 1st OFDM symbol, QAM-16 r=1/2, CH2")
		fmt.Printf("  computed: %v\n  paper:    %v\n", got, want)
		match := len(got) == len(want)
		for i := range want {
			if match && got[i] != want[i] {
				match = false
			}
		}
		fmt.Printf("  exact match: %v\n", match)
		return nil
	})

	run("table34", func() error {
		s, err := exp.FormatOverheadTable(conv)
		if err != nil {
			return err
		}
		fmt.Print(s)
		return nil
	})

	run("minsnr", func() error {
		frames := 20
		if *quick {
			frames = 8
		}
		rows, err := exp.MinSNRSweep(conv, *seed, frames)
		if err != nil {
			return err
		}
		fmt.Println("Table IV (min SNR column) — required SNR for PER <= 0.1, full waveform chain, AWGN")
		for _, r := range rows {
			fmt.Printf("  %-18v paper %4.0f dB   hard-decision %4.0f dB   soft-decision %4.0f dB\n",
				r.Mode, r.PaperDB, r.MeasuredDB, r.SoftDB)
		}
		fmt.Println("  (hard decisions cost ~2 dB; the soft chain should sit on the paper's figures)")
		return nil
	})

	run("fig5b", func() error {
		spec, err := exp.Fig5b(conv, wifi.Mode{Modulation: wifi.QAM16, CodeRate: wifi.Rate12}, core.CH2, *seed)
		if err != nil {
			return err
		}
		fmt.Print(spec)
		fmt.Printf("in-channel band-power drop: %.1f dB\n", spec.BandDropDB())
		return nil
	})

	run("fig11", func() error {
		fig, err := exp.Fig11(conv, *seed)
		if err != nil {
			return err
		}
		fmt.Print(fig)
		fmt.Println("paper: 7 data subcarriers suffice for CH1-CH3 (1-2 dB below 6, flat to 8); 5 for CH4")
		return nil
	})

	run("fig12", func() error {
		fig, err := exp.Fig12(conv, *seed)
		if err != nil {
			return err
		}
		fmt.Print(fig)
		fmt.Println("paper: CH1-CH3 -60 -> -64/-66/-68 dBm; CH4 -64 -> -70/-75/-78 dBm")
		return nil
	})

	run("fig13", func() error {
		fig := exp.Fig13()
		fmt.Print(fig)
		fmt.Println("paper: -75 dBm at 0.5 m / gain 31; submerged in the -91 dBm floor at 1 m below gain ~15")
		return nil
	})

	run("fig14", func() error {
		for _, ch := range []core.ZigBeeChannel{core.CH3, core.CH4} {
			fig, err := exp.Fig14(ch, opts)
			if err != nil {
				return err
			}
			fmt.Print(fig)
			baseline := 63.0
			for _, s := range fig.Series {
				fmt.Printf("  %-8s reaches %.0f%% of baseline at d_WZ = %.1f m\n",
					s.Name, 90.0, s.CrossoverX(0.9*baseline))
			}
		}
		fmt.Println("paper (a): normal 8.5 m; QAM-16 5 m; QAM-64 4.5 m; QAM-256 3.5 m")
		fmt.Println("paper (b): QAM-256 succeeds even at 1 m")
		return nil
	})

	run("fig15", func() error {
		fig, err := exp.Fig15(opts)
		if err != nil {
			return err
		}
		fmt.Print(fig)
		fmt.Println("paper: throughput collapses near d_Z = 1.6 m; SledZig helps little there (WiFi preamble)")
		return nil
	})

	run("fig16", func() error {
		pts, err := exp.Fig16(opts, runs)
		if err != nil {
			return err
		}
		cur := ""
		for _, p := range pts {
			if p.Variant != cur {
				cur = p.Variant
				fmt.Printf("%s:\n", cur)
			}
			fmt.Printf("  duty %.0f%%: min %5.1f  q1 %5.1f  med %5.1f  q3 %5.1f  max %5.1f  mean %5.1f kbit/s\n",
				p.DutyRatio*100, p.Stats.Min, p.Stats.Q1, p.Stats.Median, p.Stats.Q3, p.Stats.Max, p.Stats.Mean)
		}
		fmt.Println("paper: normal ~23 kbit/s at 20% then ~0; QAM-16 good to 20%, QAM-64 to 40%, QAM-256 to 70% (34.5 kbit/s mean)")
		return nil
	})

	run("fig17", func() error {
		fig := exp.Fig17()
		fmt.Print(fig)
		fmt.Println("paper: ZigBee ~30 dB below WiFi at the WiFi receiver; at the noise floor beyond ~1 m")
		return nil
	})

	run("baselines", func() error {
		fmt.Println("Mechanism comparison (paper sections III-B / VI): SledZig vs EmBee-style nulling vs gain reduction")
		fmt.Printf("  %-22s%12s%14s%16s%12s\n", "setting", "drop (dB)", "WiFi cost", "mechanism", "standard?")
		for _, tc := range []struct {
			mode wifi.Mode
			ch   core.ZigBeeChannel
		}{
			{wifi.Mode{Modulation: wifi.QAM64, CodeRate: wifi.Rate23}, core.CH2},
			{wifi.Mode{Modulation: wifi.QAM256, CodeRate: wifi.Rate34}, core.CH4},
		} {
			cmp, err := baseline.Compare(conv, tc.mode, tc.ch, baseline.RandomPayload(*seed, 400))
			if err != nil {
				return err
			}
			name := fmt.Sprintf("%v %v", tc.mode, tc.ch)
			fmt.Printf("  %-22s%12.1f%13.1f%%%16s%12v\n", name, cmp.SledZigDropDB,
				100*cmp.SledZigThroughputLoss, "SledZig", true)
			fmt.Printf("  %-22s%12.1f%13.1f%%%16s%12v\n", name, cmp.NullDropDB,
				100*cmp.NullCapacityLoss, "null (EmBee)", false)
			fmt.Printf("  %-22s%12.1f%13s%16s%12v\n", name, cmp.GainDropDB,
				fmt.Sprintf("1/%.1f range", cmp.GainRangeShrink), "gain cut", true)
		}
		return nil
	})

	run("codecs", func() error {
		frames := 20
		if *quick {
			frames = 6
		}
		rows, err := exp.CompareCodecs(exp.CodecCompareOptions{
			Convention: conv,
			Seed:       *seed,
			Frames:     frames,
			Only:       *codecName,
		})
		if err != nil {
			return err
		}
		fmt.Println("Codec comparison (paper section VI) — registry backends under one contract")
		fmt.Println("QAM-16 r=1/2, CH2, 100 B payloads, 15 dB AWGN")
		fmt.Print(exp.FormatCodecTable(rows))
		fmt.Println("  (SledZig: whole-frame drop at a few % WiFi cost; ook-ctc protects only its")
		fmt.Println("  low symbols; ofdmfi drops further but carries no WiFi data at all)")
		if *codecManifest != "" {
			f, err := os.Create(*codecManifest)
			if err != nil {
				return err
			}
			enc := json.NewEncoder(f)
			enc.SetIndent("", "  ")
			if err := enc.Encode(rows); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "codec manifest written to %s\n", *codecManifest)
		}
		return nil
	})

	run("fleet", func() error {
		pts, err := exp.FleetSweep(opts)
		if err != nil {
			return err
		}
		fmt.Println("Extension — acknowledged fleet throughput under a saturated AP at 3 m (QAM-256, CH3)")
		fmt.Printf("  %-8s%16s%16s%12s%12s\n", "nodes", "stock (kbit/s)", "SledZig (kbit/s)", "collisions", "retries")
		byNodes := map[int][2]float64{}
		coll := map[int][2]int{}
		retr := map[int][2]int{}
		for _, p := range pts {
			idx := 0
			if p.SledZig {
				idx = 1
			}
			v := byNodes[p.Nodes]
			v[idx] = p.Throughput
			byNodes[p.Nodes] = v
			c := coll[p.Nodes]
			c[idx] = p.Collisions
			coll[p.Nodes] = c
			r := retr[p.Nodes]
			r[idx] = p.Retries
			retr[p.Nodes] = r
		}
		for _, n := range []int{1, 2, 4, 8} {
			fmt.Printf("  %-8d%16.1f%16.1f%12d%12d\n", n, byNodes[n][0], byNodes[n][1], coll[n][1], retr[n][1])
		}
		return nil
	})

	run("ht40", func() error {
		fmt.Println("Extension (paper footnote 1) — SledZig on a 40 MHz channel")
		fmt.Printf("  %-18s%12s%14s%14s\n", "mode", "channel", "extra/symbol", "loss")
		for _, tc := range []struct {
			mode wifi.Mode
			ch   ht40.Channel
		}{
			{wifi.Mode{Modulation: wifi.QAM16, CodeRate: wifi.Rate12}, ht40.Channel(2)},
			{wifi.Mode{Modulation: wifi.QAM64, CodeRate: wifi.Rate23}, ht40.Channel(2)},
			{wifi.Mode{Modulation: wifi.QAM256, CodeRate: wifi.Rate34}, ht40.Channel(5)},
		} {
			plan, err := ht40.NewPlan(conv, tc.mode, tc.ch)
			if err != nil {
				return err
			}
			fmt.Printf("  %-18v%12v%14d%13.2f%%\n", tc.mode, tc.ch,
				plan.ExtraBitsPerSymbol(), 100*plan.ThroughputLossFraction())
		}
		fmt.Println("  (108 data subcarriers halve the relative overhead of protecting one 2 MHz channel)")
		return nil
	})

	run("ccamode", func() error {
		rows, err := exp.RunCCAModeAblation(opts)
		if err != nil {
			return err
		}
		fmt.Println("Modeling ablation — does the TelosB CCA react to WiFi energy? (CH3, d_Z = 1 m, saturated WiFi)")
		fmt.Printf("  %-10s%10s%18s%20s\n", "variant", "d_WZ (m)", "energy-CCA", "carrier-only CCA")
		for _, r := range rows {
			fmt.Printf("  %-10s%10.1f%15.1f kb%17.1f kb\n", r.Variant, r.DWZ, r.EnergyKbps, r.CarrierKbps)
		}
		fmt.Println("  (Fig. 14 uses energy-CCA per the paper's carrier-sense narrative; Fig. 16's")
		fmt.Println("  concurrent transmissions at 1 m require carrier-only — see EXPERIMENTS.md)")
		return nil
	})

	run("percurve", func() error {
		frames := 25
		if *quick {
			frames = 10
		}
		fig, err := exp.PERCurve(conv, wifi.Mode{Modulation: wifi.QAM64, CodeRate: wifi.Rate34}, *seed, frames)
		if err != nil {
			return err
		}
		fmt.Print(fig)
		fmt.Printf("soft-decision gain at PER 0.5: %.1f dB\n", exp.SoftGainDB(fig))
		return nil
	})

	run("phylevel", func() error {
		trials := 12
		if *quick {
			trials = 6
		}
		res, err := exp.RunPhyLevel(exp.PhyLevelConfig{Convention: conv, Seed: *seed, Trials: trials})
		if err != nil {
			return err
		}
		fmt.Print(exp.FormatPhyLevel(res))
		fmt.Println("(real WiFi + ZigBee waveforms mixed at sample level; unsynchronized correlation receiver)")
		return nil
	})

	run("engine", func() error {
		n := 256
		if *quick {
			n = 64
		}
		cfg := sledzig.Config{Modulation: sledzig.QAM64, CodeRate: sledzig.Rate34, Channel: sledzig.CH2}
		payloads := make([][]byte, n)
		for i := range payloads {
			p := make([]byte, 400)
			for j := range p {
				p[j] = byte(int(*seed) + i + j)
			}
			payloads[i] = p
		}

		enc, err := sledzig.NewEncoder(cfg)
		if err != nil {
			return err
		}
		seqStart := time.Now()
		for _, p := range payloads {
			if _, err := enc.Encode(p); err != nil {
				return err
			}
		}
		seqSecs := time.Since(seqStart).Seconds()

		eng, err := sledzig.NewEngine(sledzig.EngineConfig{Config: cfg, Workers: *workers})
		if err != nil {
			return err
		}
		defer eng.Close()
		batchStart := time.Now()
		if _, err := eng.EncodeBatch(context.Background(), payloads); err != nil {
			return err
		}
		batchSecs := time.Since(batchStart).Seconds()

		fmt.Printf("Engine throughput — %d frames of 400 B, QAM-64 r=3/4, CH2\n", n)
		fmt.Printf("  sequential Encode:       %8.1f frames/s\n", float64(n)/seqSecs)
		fmt.Printf("  EncodeBatch (%2d workers): %8.1f frames/s  (%.2fx)\n",
			eng.Workers(), float64(n)/batchSecs, seqSecs/batchSecs)

		// Decode half: render the waveforms once, then decode them
		// sequentially and through the pool.
		frames, err := eng.EncodeBatch(context.Background(), payloads)
		if err != nil {
			return err
		}
		waveforms := make([][]complex128, n)
		for i, f := range frames {
			if waveforms[i], err = f.Waveform(); err != nil {
				return err
			}
		}
		dec, err := sledzig.NewDecoder(cfg)
		if err != nil {
			return err
		}
		decSeqStart := time.Now()
		for _, w := range waveforms {
			if _, err := dec.DecodeDetailed(w); err != nil {
				return err
			}
		}
		decSeqSecs := time.Since(decSeqStart).Seconds()
		decBatchStart := time.Now()
		if _, err := eng.DecodeBatch(context.Background(), waveforms); err != nil {
			return err
		}
		decBatchSecs := time.Since(decBatchStart).Seconds()
		fmt.Printf("  sequential Decode:       %8.1f frames/s\n", float64(n)/decSeqSecs)
		fmt.Printf("  DecodeBatch (%2d workers): %8.1f frames/s  (%.2fx)\n",
			eng.Workers(), float64(n)/decBatchSecs, decSeqSecs/decBatchSecs)
		return nil
	})

	if *manifestPath != "" {
		if err := writeManifest(*manifestPath, metrics, start, *seed, failed); err != nil {
			fmt.Fprintf(os.Stderr, "manifest: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "manifest written to %s\n", *manifestPath)
	}
	if traceOut != nil {
		err := traceExp.Flush()
		if cerr := traceOut.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "trace export: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "frame traces written to %s\n", *traceJSONL)
	}
	if len(failed) > 0 {
		os.Exit(1)
	}
}

// writeManifest records the run: every flag value (defaults included),
// the toolchain, wall time, which experiments failed, and the final
// metrics snapshot.
func writeManifest(path string, metrics *sledzig.Metrics, start time.Time, seed int64, failed []string) error {
	cfg := map[string]string{}
	flag.VisitAll(func(f *flag.Flag) { cfg[f.Name] = f.Value.String() })
	m := manifest{
		Command:   "experiments",
		Config:    cfg,
		Seed:      seed,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		StartTime: start.UTC(),
		WallSecs:  time.Since(start).Seconds(),
		Failed:    failed,
		Metrics:   metrics.Snapshot(),
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(m); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
