// Command chaos soaks the decode pipeline with fault-injected waveforms
// and reports a survival table. Every run encodes valid frames under
// randomized configurations, corrupts them with randomized fault chains
// (see internal/fault), decodes them through an Engine with panic
// containment and per-frame deadlines enabled, and classifies every
// outcome against the public error taxonomy.
//
// The process exits non-zero if any decode produced an error outside the
// taxonomy, if any panic escaped the engine's containment, or if
// goroutines leaked. A clean exit is the robustness contract in
// executable form:
//
//	go run ./cmd/chaos -duration 30s
//
// With -trace-dump the soak runs under the per-frame tracer: every frame
// panic or timeout dumps the flight recorder (the last N frame traces,
// with per-stage spans and queue-wait vs. service attribution) to the
// given path, a soak failure dumps it too, and -trace-chrome additionally
// exports the retained traces in Chrome trace-event format for Perfetto:
//
//	go run ./cmd/chaos -duration 30s -trace-dump flight.json -trace-chrome trace.json
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"time"

	"sledzig"
	"sledzig/internal/fault"
)

// bucket is one row of the survival table.
type bucket struct {
	name string
	err  error // nil for the "decoded" and "untyped" buckets
}

var buckets = []bucket{
	{name: "decoded"},
	{name: "no-preamble", err: sledzig.ErrNoPreamble},
	{name: "bad-signal", err: sledzig.ErrBadSignalField},
	{name: "demod-failed", err: sledzig.ErrDemodulation},
	{name: "no-protected-channel", err: sledzig.ErrNoProtectedChannel},
	{name: "extra-bit-mismatch", err: sledzig.ErrExtraBitMismatch},
	{name: "payload-too-large", err: sledzig.ErrPayloadTooLarge},
	{name: "frame-panicked", err: sledzig.ErrFramePanicked},
	{name: "frame-deadline", err: sledzig.ErrFrameDeadline},
	{name: "untyped"},
}

// classify maps one outcome to a bucket index; the last bucket ("untyped")
// is the failure case the soak exists to catch.
func classify(err error) int {
	if err == nil {
		return 0
	}
	for i := 1; i < len(buckets)-1; i++ {
		if errors.Is(err, buckets[i].err) {
			return i
		}
	}
	return len(buckets) - 1
}

// scenario is one randomized (config, fault-chain) combination.
type scenario struct {
	cfg     sledzig.Config
	chain   fault.Chain
	rxSeed  uint8 // receiver-side scrambler seed (MismatchedSeed scenario)
	payload []byte
}

// modes are the (modulation, rate) pairs with an on-air RATE code that can
// also carry SledZig pinning (QAM-16 and up).
var modes = []struct {
	m sledzig.Modulation
	r sledzig.CodeRate
}{
	{sledzig.QAM16, sledzig.Rate12},
	{sledzig.QAM16, sledzig.Rate23},
	{sledzig.QAM16, sledzig.Rate34},
	{sledzig.QAM64, sledzig.Rate23},
	{sledzig.QAM64, sledzig.Rate34},
	{sledzig.QAM64, sledzig.Rate56},
	{sledzig.QAM256, sledzig.Rate23},
	{sledzig.QAM256, sledzig.Rate34},
	{sledzig.QAM256, sledzig.Rate56},
}
var channels = []sledzig.Channel{sledzig.CH1, sledzig.CH2, sledzig.CH3, sledzig.CH4}
var conventions = []sledzig.Convention{sledzig.ConventionIEEE, sledzig.ConventionPaper}

func randomScenario(rng *rand.Rand) scenario {
	seed := uint8(1 + rng.Intn(127))
	mode := modes[rng.Intn(len(modes))]
	s := scenario{
		cfg: sledzig.Config{
			Modulation:    mode.m,
			CodeRate:      mode.r,
			Channel:       channels[rng.Intn(len(channels))],
			Convention:    conventions[rng.Intn(len(conventions))],
			ScramblerSeed: seed,
		},
		chain:   fault.RandomChain(rng.Int63(), rng.Intn(4)),
		rxSeed:  seed,
		payload: make([]byte, 1+rng.Intn(200)),
	}
	rng.Read(s.payload)
	// One run in eight decodes with a mismatched scrambler seed — the
	// config-level fault the waveform injectors cannot express.
	if rng.Intn(8) == 0 {
		s.rxSeed = fault.MismatchedSeed(rng, seed)
	}
	return s
}

func main() {
	log.SetFlags(0)
	duration := flag.Duration("duration", 30*time.Second, "how long to soak")
	seed := flag.Int64("seed", 1, "root RNG seed (every run with one seed is identical)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "engine workers")
	batch := flag.Int("batch", 16, "waveforms per DecodeEach batch")
	traceDump := flag.String("trace-dump", "", "enable tracing and write a flight-recorder dump (JSON) here on any fault or soak failure")
	traceChrome := flag.String("trace-chrome", "", "enable tracing and write retained frame traces here in Chrome trace-event format at exit")
	traceSample := flag.Int("trace-sample", 64, "with tracing on, head-sample every Nth frame (failed frames are always retained; 0 disables head sampling)")
	overload := flag.Bool("overload", false, "run the overload soak instead: 4x offered load plus a storm-poisoned codec, asserting shed-not-stall")
	healthOut := flag.String("health-out", "", "with -overload, write the final health snapshot (JSON) to this path")
	flag.Parse()

	if *overload {
		runOverload(*duration, *seed, *workers, *healthOut)
		return
	}

	var tracer *sledzig.Tracer
	if *traceDump != "" || *traceChrome != "" {
		tracer = sledzig.NewTracer(sledzig.TraceConfig{
			SampleEvery:   *traceSample,
			FlightSize:    512,
			RetainedSize:  256,
			FaultDumpPath: *traceDump,
		})
		sledzig.SetDefaultTracer(tracer)
	}

	rng := rand.New(rand.NewSource(*seed))
	baseline := runtime.NumGoroutine()
	counts := make([]int, len(buckets))
	chainHits := map[string]int{}
	var frames, batches, mismatched int
	start := time.Now()

	for time.Since(start) < *duration {
		sc := randomScenario(rng)
		enc, err := sledzig.NewEncoder(sc.cfg)
		if err != nil {
			log.Fatalf("encoder config rejected: %v", err)
		}
		rxCfg := sc.cfg
		rxCfg.ScramblerSeed = sc.rxSeed
		rxCfg.Resilient = true
		eng, err := sledzig.NewEngine(sledzig.EngineConfig{
			Config:       rxCfg,
			Workers:      *workers,
			FrameTimeout: 2 * time.Second,
		})
		if err != nil {
			log.Fatalf("engine config rejected: %v", err)
		}
		if sc.rxSeed != sc.cfg.ScramblerSeed {
			mismatched++
		}

		waves := make([][]complex128, 0, *batch)
		for i := 0; i < *batch; i++ {
			frame, err := enc.Encode(sc.payload)
			if err != nil {
				log.Fatalf("encode of a valid payload failed: %v", err)
			}
			wave, err := frame.Waveform()
			if err != nil {
				log.Fatalf("waveform render failed: %v", err)
			}
			// Re-seed the chain per waveform so one scenario exercises many
			// fault realizations.
			chain := sc.chain
			chain.Seed = rng.Int63()
			waves = append(waves, chain.Apply(wave))
		}
		chainHits[sc.chain.Name()] += len(waves)

		outcomes := eng.DecodeEach(context.Background(), waves)
		for _, o := range outcomes {
			counts[classify(o.Err)]++
			frames++
		}
		batches++
		eng.Close()
	}

	fmt.Printf("chaos soak: %d frames in %d batches over %v (seed %d, %d workers, %d seed-mismatch scenarios)\n",
		frames, batches, time.Since(start).Round(time.Second), *seed, *workers, mismatched)
	fmt.Println("\nsurvival table:")
	for i, b := range buckets {
		fmt.Printf("  %-22s %8d  (%.1f%%)\n", b.name, counts[i], 100*float64(counts[i])/float64(max(frames, 1)))
	}
	fmt.Println("\nframes per fault chain:")
	names := make([]string, 0, len(chainHits))
	for n := range chainHits {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("  %-60s %8d\n", n, chainHits[n])
	}

	failed := false
	if untyped := counts[len(buckets)-1]; untyped > 0 {
		fmt.Fprintf(os.Stderr, "\nFAIL: %d decode errors outside the public taxonomy\n", untyped)
		failed = true
	}
	// Engines are closed; give lingering goroutines (abandoned deadline
	// frames still draining) a moment, then check for leaks.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline {
		fmt.Fprintf(os.Stderr, "\nFAIL: goroutine leak (%d now vs %d at start)\n", n, baseline)
		failed = true
	}
	if tracer != nil {
		retained := tracer.Retained()
		fmt.Printf("\ntracing: %d frames retained (of %d in flight ring)\n", len(retained), len(tracer.Flight()))
		if *traceDump != "" {
			// A mid-soak fault (frame panic/timeout) has already dumped;
			// this final dump captures the full ring either way, labelled
			// with the soak verdict.
			reason := "soak_complete"
			if failed {
				reason = "soak_failure"
			}
			if err := tracer.DumpToFile(*traceDump, reason); err != nil {
				fmt.Fprintf(os.Stderr, "trace dump failed: %v\n", err)
			} else {
				fmt.Printf("flight recorder dumped to %s\n", *traceDump)
			}
		}
		if *traceChrome != "" {
			f, err := os.Create(*traceChrome)
			if err == nil {
				err = sledzig.WriteChromeTrace(f, retained)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "chrome trace export failed: %v\n", err)
			} else {
				fmt.Printf("chrome trace written to %s (load at ui.perfetto.dev)\n", *traceChrome)
			}
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("\nPASS: every failure typed, no panics escaped, no goroutines leaked")
}
