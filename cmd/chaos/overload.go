package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"sledzig"
	"sledzig/internal/engine"
	"sledzig/internal/fault"
)

// overloadReport is the health-snapshot artifact -health-out writes: the
// terminal /debug/health document plus the soak's own accounting, so CI
// can archive one JSON file that explains the run.
type overloadReport struct {
	DurationSeconds float64 `json:"duration_seconds"`
	Workers         int     `json:"workers"`
	Producers       int     `json:"producers"`

	Accepted      int     `json:"accepted"`
	Stalled       int     `json:"stalled"`
	UnloadedP99Ms float64 `json:"unloaded_p99_ms"`
	AcceptedP99Ms float64 `json:"accepted_p99_ms"`
	LatencyBound  float64 `json:"latency_bound_ms"`

	Rejections map[string]int `json:"rejections"`
	Untyped    int            `json:"untyped"`

	BreakerOpened   uint64 `json:"breaker_opened"`
	BreakerReclosed uint64 `json:"breaker_reclosed"`
	StormPanics     uint64 `json:"storm_panics"`
	StormStalls     uint64 `json:"storm_stalls"`

	HealthyEngine  sledzig.EngineHealthReport `json:"healthy_engine"`
	PoisonedEngine sledzig.EngineHealthReport `json:"poisoned_engine"`
	HealthyDrain   sledzig.DrainReport        `json:"healthy_drain"`
	PoisonedDrain  sledzig.DrainReport        `json:"poisoned_drain"`

	// DebugHealth is the raw /debug/health body captured mid-run, the
	// exact document a gateway would poll.
	DebugHealth json.RawMessage `json:"debug_health"`
}

// shedLabel classifies a rejection against the public taxonomy; the empty
// string marks an error outside it (the failure the soak exists to catch).
func shedLabel(err error) string {
	switch {
	case errors.Is(err, sledzig.ErrOverloaded):
		return "overloaded"
	case errors.Is(err, sledzig.ErrDraining):
		return "draining"
	case errors.Is(err, sledzig.ErrCircuitOpen):
		return "circuit-open"
	case errors.Is(err, sledzig.ErrFramePanicked):
		return "frame-panicked"
	case errors.Is(err, sledzig.ErrFrameDeadline):
		return "frame-deadline"
	case errors.Is(err, sledzig.ErrEngineClosed):
		return "engine-closed"
	case errors.Is(err, sledzig.ErrPayloadTooLarge):
		return "payload-too-large"
	}
	return ""
}

func percentileMs(samples []time.Duration, p float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx]) / float64(time.Millisecond)
}

// runOverload is the -overload soak: a healthy decode engine under ≥4×
// offered load plus a storm-poisoned encode engine, asserting
// shed-not-stall — every rejection typed, accepted latency bounded,
// breaker transitions visible, bounded drain, zero leaked goroutines.
func runOverload(duration time.Duration, seed int64, workers int, healthOut string) {
	reg := sledzig.NewMetrics()
	sledzig.SetDefaultMetrics(reg)
	baseline := runtime.NumGoroutine()

	cfg := sledzig.Config{Modulation: sledzig.QAM16, CodeRate: sledzig.Rate12, Channel: sledzig.CH2}

	// One clean waveform all decode producers share.
	enc, err := sledzig.NewEncoder(cfg)
	if err != nil {
		log.Fatalf("overload: encoder: %v", err)
	}
	payload := make([]byte, 120)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	frame, err := enc.Encode(payload)
	if err != nil {
		log.Fatalf("overload: encode: %v", err)
	}
	wave, err := frame.Waveform()
	if err != nil {
		log.Fatalf("overload: waveform: %v", err)
	}

	// Unloaded baseline: batch-1 decodes on an uncapped engine at the same
	// concurrency the soak will use (one submitter per worker), so the
	// baseline carries the same scheduling and race-detector overhead as
	// the loaded measurement it bounds.
	warm, err := sledzig.NewEngine(sledzig.EngineConfig{Config: cfg, Workers: workers})
	if err != nil {
		log.Fatalf("overload: warmup engine: %v", err)
	}
	var (
		warmMu   sync.Mutex
		unloaded []time.Duration
		warmWG   sync.WaitGroup
	)
	for p := 0; p < workers; p++ {
		warmWG.Add(1)
		go func() {
			defer warmWG.Done()
			for i := 0; i < 48; i++ {
				t0 := time.Now()
				outs := warm.DecodeEach(context.Background(), [][]complex128{wave})
				if outs[0].Err != nil {
					log.Fatalf("overload: clean decode failed: %v", outs[0].Err)
				}
				took := time.Since(t0)
				warmMu.Lock()
				unloaded = append(unloaded, took)
				warmMu.Unlock()
			}
		}()
	}
	warmWG.Wait()
	warm.Close()
	p99Unloaded := percentileMs(unloaded, 0.99)

	maxWait := time.Duration(p99Unloaded * float64(time.Millisecond))
	if maxWait < 5*time.Millisecond {
		maxWait = 5 * time.Millisecond
	}
	if maxWait > 250*time.Millisecond {
		maxWait = 250 * time.Millisecond
	}

	healthy, err := sledzig.NewEngine(sledzig.EngineConfig{
		Config:       cfg,
		Workers:      workers,
		Queue:        workers,
		FrameTimeout: 2 * time.Second,
		MaxQueueWait: maxWait,
		MaxInflight:  workers,
	})
	if err != nil {
		log.Fatalf("overload: healthy engine: %v", err)
	}

	// The poisoned backend: an ofdmfi encode engine whose frames a seeded
	// storm panics or stalls, behind a breaker and tight caps.
	poisonCfg := sledzig.Config{
		Modulation: sledzig.QAM16, CodeRate: sledzig.Rate12, Channel: sledzig.CH2,
		Codec: sledzig.CodecOfdmFi,
	}
	poisoned, err := sledzig.NewEngine(sledzig.EngineConfig{
		Config:              poisonCfg,
		Workers:             workers,
		Queue:               workers,
		FrameTimeout:        25 * time.Millisecond,
		MaxQueueWait:        50 * time.Millisecond,
		MaxInflight:         2 * workers,
		MaxAbandonedWorkers: 8,
		Breaker: sledzig.BreakerConfig{
			Window: 32, MinSamples: 8, FailureRate: 0.4,
			Cooldown: 250 * time.Millisecond, Probes: 3,
		},
	})
	if err != nil {
		log.Fatalf("overload: poisoned engine: %v", err)
	}

	storm := fault.NewStorm(seed, 0.30, 0.20, 100*time.Millisecond)
	engine.SetFrameHook(func(info engine.FrameHookInfo) {
		if info.Codec == sledzig.CodecOfdmFi {
			storm.Strike()
		}
	})
	defer engine.SetFrameHook(nil)

	var (
		mu         sync.Mutex
		accepted   []time.Duration
		stalled    int
		untyped    int
		untypedMsg string
		rejections = map[string]int{}
	)
	// latency=true only for healthy-engine calls: the poisoned engine's
	// accepted frames are deliberately slow (storm stalls, frame timeouts
	// in the same batch) and say nothing about admission keeping the
	// healthy path's latency bounded.
	record := func(took time.Duration, err error, latency bool) {
		mu.Lock()
		defer mu.Unlock()
		if took > 5*time.Second {
			stalled++
		}
		if err == nil {
			if latency {
				accepted = append(accepted, took)
			}
			return
		}
		if label := shedLabel(err); label != "" {
			rejections[label]++
			return
		}
		untyped++
		if untypedMsg == "" {
			untypedMsg = err.Error()
		}
	}

	stop := time.Now().Add(duration)
	producers := 4 * workers
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(stop) {
				t0 := time.Now()
				outs := healthy.DecodeEach(context.Background(), [][]complex128{wave})
				record(time.Since(t0), outs[0].Err, true)
				if outs[0].Err != nil {
					// Back off like a real client on a 429: keeps offered
					// load far above capacity without the shed loop
					// starving the workers of CPU.
					time.Sleep(200 * time.Microsecond)
				}
			}
		}()
	}
	smallPayload := []byte{0xde, 0xad, 0xbe, 0xef}
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			batch := make([][]byte, 8)
			for i := range batch {
				batch[i] = smallPayload
			}
			for time.Now().Before(stop) {
				t0 := time.Now()
				outs := poisoned.EncodeEach(context.Background(), batch)
				took := time.Since(t0)
				allRejected := true
				for _, o := range outs {
					record(took/time.Duration(len(outs)), o.Err, false)
					allRejected = allRejected && o.Err != nil
				}
				if allRejected {
					time.Sleep(200 * time.Microsecond)
				}
			}
		}()
	}
	wg.Wait()

	// Capture the gateway's view while both engines are still live: the
	// literal /debug/health document off the diagnostics mux.
	rr := httptest.NewRecorder()
	reg.NewMux().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/health", nil))
	debugHealth := json.RawMessage(rr.Body.Bytes())
	healthySnap := healthy.HealthReport()
	poisonedSnap := poisoned.HealthReport()

	drainCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	healthyDrain := healthy.Drain(drainCtx)
	poisonedDrain := poisoned.Drain(drainCtx)

	rep := overloadReport{
		DurationSeconds: duration.Seconds(),
		Workers:         workers,
		Producers:       producers,
		Accepted:        len(accepted),
		Stalled:         stalled,
		UnloadedP99Ms:   p99Unloaded,
		AcceptedP99Ms:   percentileMs(accepted, 0.99),
		Rejections:      rejections,
		Untyped:         untyped,
		BreakerOpened:   reg.Counter("engine.breaker.opened").Value(),
		BreakerReclosed: reg.Counter("engine.breaker.reclosed").Value(),
		StormPanics:     storm.Panics(),
		StormStalls:     storm.Stalls(),
		HealthyEngine:   healthySnap,
		PoisonedEngine:  poisonedSnap,
		HealthyDrain:    healthyDrain,
		PoisonedDrain:   poisonedDrain,
		DebugHealth:     debugHealth,
	}
	rep.LatencyBound = 2 * p99Unloaded
	if rep.LatencyBound < 50 {
		rep.LatencyBound = 50
	}

	fmt.Printf("chaos overload: %d accepted, %d stalled, %d untyped over %v (%d workers, %d producers)\n",
		rep.Accepted, stalled, untyped, duration, workers, producers)
	fmt.Printf("  latency: unloaded p99 %.2fms, loaded accepted p99 %.2fms (bound %.2fms)\n",
		rep.UnloadedP99Ms, rep.AcceptedP99Ms, rep.LatencyBound)
	fmt.Println("  rejections by taxonomy:")
	labels := make([]string, 0, len(rejections))
	for l := range rejections {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		fmt.Printf("    %-16s %8d\n", l, rejections[l])
	}
	fmt.Printf("  breaker: opened %d times, re-closed %d times; storm: %d panics, %d stalls\n",
		rep.BreakerOpened, rep.BreakerReclosed, rep.StormPanics, rep.StormStalls)
	fmt.Printf("  drains: healthy %+v, poisoned %+v\n", healthyDrain, poisonedDrain)

	if healthOut != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err == nil {
			err = os.WriteFile(healthOut, data, 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "health snapshot write failed: %v\n", err)
		} else {
			fmt.Printf("  health snapshot written to %s\n", healthOut)
		}
	}

	failed := false
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "\nFAIL: "+format+"\n", args...)
		failed = true
	}
	if stalled > 0 {
		fail("%d submissions stalled past 5s — admission control failed to shed", stalled)
	}
	if untyped > 0 {
		fail("%d rejections outside the public taxonomy (first: %s)", untyped, untypedMsg)
	}
	if len(accepted) == 0 {
		fail("no frames accepted — the engine shed everything")
	}
	if rep.AcceptedP99Ms > rep.LatencyBound {
		fail("accepted p99 %.2fms exceeds bound %.2fms — backlog leaked into accepted frames",
			rep.AcceptedP99Ms, rep.LatencyBound)
	}
	if rejections["overloaded"] == 0 {
		fail("offered 4x capacity but nothing shed ErrOverloaded — admission gate inert")
	}
	if rep.BreakerOpened == 0 {
		fail("storm-poisoned backend never tripped the breaker")
	}
	if rejections["circuit-open"] == 0 {
		fail("breaker tripped but no submission failed fast with ErrCircuitOpen")
	}

	// Abandoned storm stalls finish within their 100ms; give stragglers a
	// moment, then hold the zero-leak line.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline {
		fail("goroutine leak (%d now vs %d at start)", n, baseline)
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("\nPASS: shed not stalled — typed rejections, bounded latency, breaker cycled, clean drain, no leaks")
}
