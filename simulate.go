package sledzig

import (
	"fmt"

	"sledzig/internal/channel"
	"sledzig/internal/codec"
	"sledzig/internal/core"
	"sledzig/internal/dsp"
	"sledzig/internal/exp"
	"sledzig/internal/mac"
	"sledzig/internal/wifi"
)

// CoexistenceConfig describes one WiFi/ZigBee coexistence scenario in the
// paper's office geometry (Fig. 10): a WiFi link and a ZigBee link at
// configurable distances, with the WiFi transmitter either running
// standard frames or SledZig-encoded ones.
type CoexistenceConfig struct {
	// WiFi transmission parameters.
	Modulation Modulation
	CodeRate   CodeRate
	Channel    Channel // protected channel; also the ZigBee link's channel
	UseSledZig bool
	Convention Convention
	// Codec selects the coexistence mechanism for the protected variant
	// (one of Codecs(); empty = CodecSledZig). Only read when UseSledZig
	// is true.
	Codec string

	// Geometry in meters: WiFi Tx -> ZigBee Rx, ZigBee Tx -> ZigBee Rx,
	// WiFi Tx -> WiFi Rx.
	DWZ, DZ, DW float64

	// WiFi traffic: airtime fraction (1 = saturated) and burst length in
	// seconds (0 = standard 1500-byte PPDUs).
	DutyRatio    float64
	BurstAirtime float64

	// Duration of the simulation in (virtual) seconds; Seed drives all
	// randomness.
	Duration float64
	Seed     int64

	// EnergyCCA selects energy-detect clear-channel assessment on the
	// ZigBee transmitter (the paper's carrier-sense analysis); false
	// models a CC2420 that ignores non-802.15.4 energy.
	EnergyCCA bool

	// ZigBeeNodes is the number of contending ZigBee transmitters
	// (default 1, the paper's single-link setup).
	ZigBeeNodes int
	// UseAcks enables 802.15.4 immediate ACKs with retransmissions.
	UseAcks bool
	// ZigBeeReportInterval switches the ZigBee side from saturated
	// traffic (0) to one frame per interval (seconds), the duty cycle of
	// real sensor deployments.
	ZigBeeReportInterval float64
}

// CoexistenceResult reports the simulated network performance.
type CoexistenceResult struct {
	ZigBeeThroughputBps float64
	ZigBeeFramesSent    int
	ZigBeeDelivered     int
	ZigBeeCorrupted     int
	ZigBeeCCADrops      int
	ZigBeeCollisions    int
	ZigBeeRetries       int
	WiFiFramesSent      int
	WiFiAirtimeFraction float64
	WiFiFramesFailed    int
	// WiFiGoodputFraction is 1 minus the SledZig extra-bit overhead (the
	// paper's Table IV loss) when SledZig is active.
	WiFiGoodputFraction float64
	// InBandRSSIDBm is the WiFi power a TelosB measures in the ZigBee
	// channel at 1 m (Fig. 12's quantity).
	InBandRSSIDBm float64
}

// SimulateCoexistence runs the discrete-event coexistence simulation with
// a WiFi in-band profile derived from real PHY waveforms.
func SimulateCoexistence(cfg CoexistenceConfig) (*CoexistenceResult, error) {
	if !cfg.Channel.Valid() {
		return nil, fmt.Errorf("%w: coexistence config must name a channel", ErrInvalidChannel)
	}
	mcfg := Config{Modulation: cfg.Modulation, CodeRate: cfg.CodeRate, Channel: cfg.Channel,
		Convention: cfg.Convention, Codec: cfg.Codec}.WithDefaults()
	if err := mcfg.Validate(); err != nil {
		return nil, err
	}
	mode := mcfg.mode()
	variant := exp.Variant{Name: "custom", Mode: mode, SledZig: cfg.UseSledZig, Codec: mcfg.Codec}
	profile, err := exp.DeriveProfile(cfg.Convention, variant, cfg.Channel, cfg.Seed+7)
	if err != nil {
		return nil, err
	}
	ccaMode := mac.CCACarrierOnly
	if cfg.EnergyCCA {
		ccaMode = mac.CCAEnergy
	}
	res, err := mac.Run(mac.Config{
		Seed:             cfg.Seed,
		Duration:         cfg.Duration,
		DWZ:              cfg.DWZ,
		DZ:               cfg.DZ,
		DW:               cfg.DW,
		Profile:          profile,
		WiFiMode:         mode,
		DutyRatio:        cfg.DutyRatio,
		WiFiFrameAirtime: cfg.BurstAirtime,
		CCAMode:          ccaMode,
		ZigBeeNodes:      cfg.ZigBeeNodes,
		UseAcks:          cfg.UseAcks,
		ZigBeeInterval:   cfg.ZigBeeReportInterval,
	})
	if err != nil {
		return nil, err
	}
	goodput := 1.0
	if cfg.UseSledZig {
		if mcfg.Codec != CodecSledZig {
			cdc, err := mcfg.newCodec()
			if err != nil {
				return nil, err
			}
			goodput = 1 - cdc.OverheadFraction()
		} else {
			plan, err := core.NewPlan(cfg.Convention, mode, cfg.Channel)
			if err != nil {
				return nil, err
			}
			goodput = 1 - plan.ThroughputLossFraction()
		}
	}
	return &CoexistenceResult{
		ZigBeeThroughputBps: res.ZigBeeThroughputBps,
		ZigBeeFramesSent:    res.ZigBeeSent,
		ZigBeeDelivered:     res.ZigBeeDelivered,
		ZigBeeCorrupted:     res.ZigBeeCorrupted,
		ZigBeeCCADrops:      res.ZigBeeCCADrops,
		ZigBeeCollisions:    res.ZigBeeCollisions,
		ZigBeeRetries:       res.ZigBeeRetries,
		WiFiFramesSent:      res.WiFiFramesSent,
		WiFiAirtimeFraction: res.WiFiAirtime / res.SimulatedDuration,
		WiFiFramesFailed:    res.WiFiFramesFailed,
		WiFiGoodputFraction: goodput,
		InBandRSSIDBm:       exp.InBandRSSIDBm(profile, 1, 0),
	}, nil
}

// MeasureBandReduction encodes a payload both normally and with SledZig
// and measures the actual band-power drop inside the protected channel
// from the generated waveforms (the quantity behind Figs. 5b, 11 and 12).
func MeasureBandReduction(cfg Config, payload []byte) (float64, error) {
	if !cfg.Channel.Valid() {
		return 0, fmt.Errorf("%w: config must name a protected channel", ErrInvalidChannel)
	}
	cfg = cfg.WithDefaults()
	if cfg.Codec != CodecSledZig {
		// Generic backends measure through the codec layer: protected DATA
		// symbols against a standard frame of the same mode.
		cdc, err := cfg.newCodec()
		if err != nil {
			return 0, err
		}
		return codec.MeasureBandDrop(cdc, cfg.codecParams(), payload)
	}
	mode := cfg.mode()
	normal, err := wifi.Transmitter{Mode: mode, Convention: cfg.Convention, Seed: cfg.ScramblerSeed}.Frame(payload)
	if err != nil {
		return 0, err
	}
	normalWave, err := normal.DataWaveform()
	if err != nil {
		return 0, err
	}
	enc, err := NewEncoder(cfg)
	if err != nil {
		return 0, err
	}
	frame, err := enc.Encode(payload)
	if err != nil {
		return 0, err
	}
	sledWave, err := frame.res.Frame.DataWaveform()
	if err != nil {
		return 0, err
	}
	lo, hi := cfg.Channel.BandHz()
	pn, err := dsp.BandPower(normalWave, wifi.SampleRate, lo, hi)
	if err != nil {
		return 0, err
	}
	ps, err := dsp.BandPower(sledWave, wifi.SampleRate, lo, hi)
	if err != nil {
		return 0, err
	}
	return dsp.DB(pn) - dsp.DB(ps), nil
}

// NoiseFloorDBm is the paper's measured background noise in 2 MHz.
const NoiseFloorDBm = channel.NoiseFloorDBm
