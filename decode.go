package sledzig

import (
	"sledzig/internal/core"
	"sledzig/internal/obs/trace"
	"sledzig/internal/wifi"
)

// DecodeResult carries everything DecodeDetailed learns about a received
// SledZig frame beyond the payload itself.
type DecodeResult struct {
	// Payload is the recovered original payload.
	Payload []byte
	// Channel is the protected ZigBee channel detected from the
	// constellation.
	Channel Channel
	// Modulation and CodeRate are the mode signalled in the PLCP header.
	Modulation Modulation
	CodeRate   CodeRate
	// ScramblerSeed is the seed the descrambler used (the configured one,
	// or the 802.11 Annex G default).
	ScramblerSeed uint8
	// ExtraBits is how many extra bits the frame spent on the
	// constellation constraints.
	ExtraBits int
	// NumSymbols is the DATA-field length in OFDM symbols.
	NumSymbols int
	// SymbolEVM is the per-DATA-symbol RMS error-vector magnitude of the
	// equalized constellation points against the nearest ideal points
	// (linear scale, relative to unit average constellation power). On a
	// clean channel it is ~0; it grows with noise and residual channel
	// error.
	SymbolEVM []float64
}

// DecodeDetailed demodulates a PPDU waveform and returns the payload
// together with the detected mode, channel, extra-bit count and per-symbol
// EVM. Decode is the thin compatibility wrapper over this.
func (d *Decoder) DecodeDetailed(waveform []complex128) (*DecodeResult, error) {
	seed := d.cfg.ScramblerSeed
	if seed == 0 {
		seed = wifi.DefaultScramblerSeed
	}
	// Root frame trace (nil, and free, when no tracer is installed): the
	// receive pipeline and the SledZig stripper land their stage spans here.
	tf := trace.Start("decode")
	rx, err := wifi.Receiver{Seed: seed, Convention: d.cfg.Convention, Resync: d.cfg.Resilient, Trace: tf}.Receive(waveform)
	if err != nil {
		tf.Finish(err)
		return nil, wrapDecodeErr(err)
	}
	payload, ch, err := core.Decoder{Convention: d.cfg.Convention, Trace: tf}.DecodeAuto(rx)
	tf.Finish(err)
	if err != nil {
		return nil, wrapDecodeErr(err)
	}
	res := &DecodeResult{
		Payload:       payload,
		Channel:       ch,
		Modulation:    rx.Mode.Modulation,
		CodeRate:      rx.Mode.CodeRate,
		ScramblerSeed: seed,
		NumSymbols:    len(rx.DataPoints),
		SymbolEVM:     wifi.SymbolEVM(rx.Mode.Modulation, rx.DataPoints),
	}
	// The extra-bit count follows from the detected plan's layout; the
	// plan cache makes this lookup free after the first frame.
	if plan, perr := core.CachedPlan(d.cfg.Convention, rx.Mode, ch); perr == nil {
		if layout, lerr := plan.FrameLayout(len(rx.DataPoints)); lerr == nil {
			res.ExtraBits = len(layout.Positions)
		}
	}
	return res, nil
}
