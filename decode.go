package sledzig

import (
	"sync"

	"sledzig/internal/codec"
	"sledzig/internal/core"
	"sledzig/internal/obs/trace"
	"sledzig/internal/wifi"
)

// Decoder recovers payloads from received waveforms using the configured
// codec backend (SledZig by default). It is safe for concurrent use.
type Decoder struct {
	cfg Config

	// Non-default codec backends decode through the registry contract;
	// instances hold recycled state, so calls serialize on mu.
	cdc codec.Codec
	mu  sync.Mutex
}

// NewDecoder resolves the config defaults, validates it, and prepares the
// selected codec backend. For the default SledZig codec only Convention,
// ScramblerSeed and Resilient matter (mode and channel are read off the
// air); other codecs also need the Channel their receiver is fixed on.
func NewDecoder(cfg Config) (*Decoder, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &Decoder{cfg: cfg}
	if cfg.Codec != CodecSledZig {
		cdc, err := cfg.newCodec()
		if err != nil {
			return nil, err
		}
		d.cdc = cdc
	}
	return d, nil
}

// DecodeResult carries everything Decode learns about a received frame
// beyond the payload itself. The SledZig codec fills every field; other
// codec backends fill Payload, Channel and Codec and leave the
// PHY-detail fields zero.
type DecodeResult struct {
	// Payload is the recovered original payload.
	Payload []byte
	// Channel is the protected ZigBee channel (detected from the
	// constellation for SledZig, configured for fixed-channel codecs;
	// zero for standard-frame decodes).
	Channel Channel
	// Codec names the backend that produced the result; empty for
	// standard-frame decodes (AsStandardFrame).
	Codec string
	// Modulation and CodeRate are the mode signalled in the PLCP header.
	Modulation Modulation
	CodeRate   CodeRate
	// ScramblerSeed is the seed the descrambler used (the configured one,
	// or the 802.11 Annex G default).
	ScramblerSeed uint8
	// ExtraBits is how many extra bits the frame spent on the
	// constellation constraints.
	ExtraBits int
	// NumSymbols is the DATA-field length in OFDM symbols.
	NumSymbols int
	// SymbolEVM is the per-DATA-symbol RMS error-vector magnitude of the
	// equalized constellation points against the nearest ideal points
	// (linear scale, relative to unit average constellation power). On a
	// clean channel it is ~0; it grows with noise and residual channel
	// error.
	SymbolEVM []float64
}

// DecodeOption customises one Decode call.
type DecodeOption func(*decodeOptions)

type decodeOptions struct {
	standard bool
}

// AsStandardFrame makes Decode treat the capture as a plain 802.11 PPDU:
// the codec-specific stages are skipped and the result carries the raw
// PSDU — useful for baseline comparisons against unmodified WiFi.
func AsStandardFrame() DecodeOption {
	return func(o *decodeOptions) { o.standard = true }
}

// Decode demodulates a PPDU waveform with the configured codec backend
// and returns the payload together with everything else the receive
// chain learned (see DecodeResult). For the default SledZig codec the
// protected channel is detected from the constellation and the extra
// bits are stripped; options adjust the interpretation of the capture.
//
// Decode is the single decoding entry point; DecodePayload, DecodeNormal
// and DecodeDetailed are thin deprecated wrappers over it.
func (d *Decoder) Decode(waveform []complex128, opts ...DecodeOption) (*DecodeResult, error) {
	var o decodeOptions
	for _, opt := range opts {
		opt(&o)
	}
	switch {
	case o.standard:
		return d.decodeStandard(waveform)
	case d.cdc != nil:
		return d.decodeCodec(waveform)
	}
	return d.decodeSledZig(waveform)
}

// DecodePayload demodulates a PPDU waveform and returns the payload and
// detected channel.
//
// Deprecated: use Decode, which reports the same through DecodeResult.
func (d *Decoder) DecodePayload(waveform []complex128) ([]byte, Channel, error) {
	res, err := d.Decode(waveform)
	if err != nil {
		return nil, 0, err
	}
	return res.Payload, res.Channel, nil
}

// DecodeNormal demodulates a standard (non-SledZig) WiFi PPDU and returns
// its PSDU.
//
// Deprecated: use Decode with AsStandardFrame.
func (d *Decoder) DecodeNormal(waveform []complex128) ([]byte, error) {
	res, err := d.Decode(waveform, AsStandardFrame())
	if err != nil {
		return nil, err
	}
	return res.Payload, nil
}

// DecodeDetailed demodulates a PPDU waveform and returns the full
// DecodeResult.
//
// Deprecated: DecodeDetailed is the old name of Decode; call Decode.
func (d *Decoder) DecodeDetailed(waveform []complex128) (*DecodeResult, error) {
	return d.Decode(waveform)
}

// seed resolves the configured scrambler seed.
func (d *Decoder) seed() uint8 {
	if d.cfg.ScramblerSeed == 0 {
		return wifi.DefaultScramblerSeed
	}
	return d.cfg.ScramblerSeed
}

// decodeSledZig is the default path: standard receive, channel detection,
// extra-bit strip.
func (d *Decoder) decodeSledZig(waveform []complex128) (*DecodeResult, error) {
	seed := d.seed()
	// Root frame trace (nil, and free, when no tracer is installed): the
	// receive pipeline and the SledZig stripper land their stage spans here.
	tf := trace.Start("decode")
	rx, err := wifi.Receiver{Seed: seed, Convention: d.cfg.Convention, Resync: d.cfg.Resilient, WideIQ: d.cfg.WideIQ, Trace: tf}.Receive(waveform)
	if err != nil {
		tf.Finish(err)
		return nil, wrapDecodeErr(err)
	}
	payload, ch, err := core.Decoder{Convention: d.cfg.Convention, Trace: tf}.DecodeAuto(rx)
	tf.Finish(err)
	if err != nil {
		return nil, wrapDecodeErr(err)
	}
	res := &DecodeResult{
		Payload:       payload,
		Channel:       ch,
		Codec:         CodecSledZig,
		Modulation:    rx.Mode.Modulation,
		CodeRate:      rx.Mode.CodeRate,
		ScramblerSeed: seed,
		NumSymbols:    len(rx.DataPoints),
		SymbolEVM:     wifi.SymbolEVM(rx.Mode.Modulation, rx.DataPoints),
	}
	// The extra-bit count follows from the detected plan's layout; the
	// plan cache makes this lookup free after the first frame.
	if plan, perr := core.CachedPlan(d.cfg.Convention, rx.Mode, ch); perr == nil {
		if layout, lerr := plan.FrameLayout(len(rx.DataPoints)); lerr == nil {
			res.ExtraBits = len(layout.Positions)
		}
	}
	return res, nil
}

// decodeStandard skips every codec stage and returns the raw PSDU.
func (d *Decoder) decodeStandard(waveform []complex128) (*DecodeResult, error) {
	seed := d.seed()
	tf := trace.Start("decode")
	rx, err := wifi.Receiver{Seed: seed, Convention: d.cfg.Convention, Resync: d.cfg.Resilient, WideIQ: d.cfg.WideIQ, Trace: tf}.Receive(waveform)
	tf.Finish(err)
	if err != nil {
		return nil, wrapDecodeErr(err)
	}
	return &DecodeResult{
		Payload:       rx.PSDU,
		Modulation:    rx.Mode.Modulation,
		CodeRate:      rx.Mode.CodeRate,
		ScramblerSeed: seed,
		NumSymbols:    len(rx.DataPoints),
		SymbolEVM:     wifi.SymbolEVM(rx.Mode.Modulation, rx.DataPoints),
	}, nil
}

// decodeCodec routes through the configured registry backend.
func (d *Decoder) decodeCodec(waveform []complex128) (*DecodeResult, error) {
	tf := trace.Start("decode")
	d.mu.Lock()
	t, traceable := d.cdc.(codec.Traceable)
	if traceable {
		t.SetTrace(tf)
	}
	dec, err := d.cdc.Decode(waveform)
	if traceable {
		t.SetTrace(nil)
	}
	d.mu.Unlock()
	tf.Finish(err)
	if err != nil {
		return nil, wrapDecodeErr(err)
	}
	return &DecodeResult{
		Payload: dec.Payload,
		Channel: dec.Channel,
		Codec:   d.cfg.Codec,
	}, nil
}
