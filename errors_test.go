package sledzig

import (
	"errors"
	"fmt"
	"testing"

	"sledzig/internal/core"
	"sledzig/internal/engine"
	"sledzig/internal/wifi"
)

// The typed-error taxonomy promises every public failure is reachable with
// errors.Is. Each test below provokes one sentinel end to end.

func TestErrInvalidChannelReachable(t *testing.T) {
	if _, err := NewEncoder(Config{}); !errors.Is(err, ErrInvalidChannel) {
		t.Fatalf("NewEncoder without channel: got %v, want ErrInvalidChannel", err)
	}
	if err := (Config{Channel: 9}).Validate(); !errors.Is(err, ErrInvalidChannel) {
		t.Fatalf("Validate with channel 9: got %v, want ErrInvalidChannel", err)
	}
	if _, err := NewEngine(EngineConfig{}); !errors.Is(err, ErrInvalidChannel) {
		t.Fatalf("NewEngine without channel: got %v, want ErrInvalidChannel", err)
	}
}

func TestErrPayloadTooLargeReachable(t *testing.T) {
	enc, err := NewEncoder(Config{Channel: CH2})
	if err != nil {
		t.Fatalf("NewEncoder: %v", err)
	}
	if _, err := enc.Encode(nil); !errors.Is(err, ErrPayloadTooLarge) {
		t.Fatalf("Encode(nil): got %v, want ErrPayloadTooLarge", err)
	}
	if _, err := enc.Encode(make([]byte, 0x10000)); !errors.Is(err, ErrPayloadTooLarge) {
		t.Fatalf("Encode(64KiB+1): got %v, want ErrPayloadTooLarge", err)
	}
}

func TestErrNoPreambleReachable(t *testing.T) {
	dec, err := NewDecoder(Config{})
	if err != nil {
		t.Fatalf("NewDecoder: %v", err)
	}
	if _, err := dec.Decode(make([]complex128, 50)); !errors.Is(err, ErrNoPreamble) {
		t.Fatalf("Decode(short): got %v, want ErrNoPreamble", err)
	}

	// Truncated mid-PPDU: the SIGNAL field promises more symbols than the
	// capture holds.
	wave := encodeTestWaveform(t, Config{Channel: CH2}, 100)
	if _, err := dec.Decode(wave[:len(wave)-wifi.SymbolLength]); !errors.Is(err, ErrNoPreamble) {
		t.Fatalf("Decode(truncated): got %v, want ErrNoPreamble", err)
	}
}

func TestErrBadSignalFieldReachable(t *testing.T) {
	wave := encodeTestWaveform(t, Config{Channel: CH2}, 60)
	// Splice in a SIGNAL symbol whose parity bit is flipped. The flipped
	// field is re-encoded into a valid codeword, so the Viterbi decoder
	// returns it verbatim and the parity check must reject it.
	field, err := wifi.SignalField(wifi.Mode{Modulation: wifi.QAM16, CodeRate: wifi.Rate12}, 100)
	if err != nil {
		t.Fatalf("SignalField: %v", err)
	}
	field[17] ^= 1
	coded, err := wifi.EncodeAndPuncture(field, wifi.Rate12)
	if err != nil {
		t.Fatalf("EncodeAndPuncture: %v", err)
	}
	inter, err := wifi.Interleave(wifi.BPSK, coded)
	if err != nil {
		t.Fatalf("Interleave: %v", err)
	}
	pts, err := wifi.MapAll(wifi.BPSK, inter)
	if err != nil {
		t.Fatalf("MapAll: %v", err)
	}
	sym, err := wifi.AssembleSymbol(pts, 0)
	if err != nil {
		t.Fatalf("AssembleSymbol: %v", err)
	}
	copy(wave[wifi.PreambleLength:], sym)
	dec, err := NewDecoder(Config{})
	if err != nil {
		t.Fatalf("NewDecoder: %v", err)
	}
	if _, err := dec.Decode(wave); !errors.Is(err, ErrBadSignalField) {
		t.Fatalf("Decode(zeroed SIGNAL): got %v, want ErrBadSignalField", err)
	}
}

func TestErrNoProtectedChannelReachable(t *testing.T) {
	// A completely standard WiFi frame has no pinned subcarriers to detect.
	tx := wifi.Transmitter{Mode: wifi.Mode{Modulation: wifi.QAM16, CodeRate: wifi.Rate12}}
	frame, err := tx.Frame(make([]byte, 80))
	if err != nil {
		t.Fatalf("Transmitter.Frame: %v", err)
	}
	wave, err := frame.Waveform()
	if err != nil {
		t.Fatalf("Waveform: %v", err)
	}
	dec, err := NewDecoder(Config{})
	if err != nil {
		t.Fatalf("NewDecoder: %v", err)
	}
	if _, err := dec.Decode(wave); !errors.Is(err, ErrNoProtectedChannel) {
		t.Fatalf("Decode(standard frame): got %v, want ErrNoProtectedChannel", err)
	}
	// DecodeNormal remains the escape hatch for such frames.
	if _, err := dec.DecodeNormal(wave); err != nil {
		t.Fatalf("DecodeNormal(standard frame): %v", err)
	}
}

func TestErrExtraBitMismatchReachable(t *testing.T) {
	// Encode under one convention, decode under the other: the pinned
	// constellation points still flag the protected channel (detection is
	// convention-independent), but the extra-bit geometry no longer lines
	// up, so the strip/header stage must reject the frame.
	wave := encodeTestWaveform(t, Config{Channel: CH2, Convention: ConventionIEEE}, 200)
	dec, err := NewDecoder(Config{Convention: ConventionPaper})
	if err != nil {
		t.Fatalf("NewDecoder: %v", err)
	}
	if _, err := dec.Decode(wave); !errors.Is(err, ErrExtraBitMismatch) {
		t.Fatalf("Decode(convention mismatch): got %v, want ErrExtraBitMismatch", err)
	}
}

// encodeTestWaveform builds one SledZig PPDU with a deterministic payload.
func encodeTestWaveform(t *testing.T, cfg Config, payloadLen int) []complex128 {
	t.Helper()
	enc, err := NewEncoder(cfg)
	if err != nil {
		t.Fatalf("NewEncoder: %v", err)
	}
	payload := make([]byte, payloadLen)
	for i := range payload {
		payload[i] = byte(i*31 + 7)
	}
	frame, err := enc.Encode(payload)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	wave, err := frame.Waveform()
	if err != nil {
		t.Fatalf("Waveform: %v", err)
	}
	return wave
}

// chainDetail is a typed error planted at the bottom of each wrap chain so
// errors.As must traverse every layer — internal sentinel wrap, facade
// taxonomy wrap, transport wrap — to recover it.
type chainDetail struct{ site string }

func (d *chainDetail) Error() string { return "detail at " + d.site }

// publicSentinels is the complete exported taxonomy; the exclusivity leg
// below asserts each wrapped chain matches exactly one of them.
var publicSentinels = map[string]error{
	"ErrInvalidChannel":     ErrInvalidChannel,
	"ErrInvalidConfig":      ErrInvalidConfig,
	"ErrPayloadTooLarge":    ErrPayloadTooLarge,
	"ErrNoPreamble":         ErrNoPreamble,
	"ErrBadSignalField":     ErrBadSignalField,
	"ErrExtraBitMismatch":   ErrExtraBitMismatch,
	"ErrNoProtectedChannel": ErrNoProtectedChannel,
	"ErrDemodulation":       ErrDemodulation,
	"ErrFramePanicked":      ErrFramePanicked,
	"ErrFrameDeadline":      ErrFrameDeadline,
}

// TestSentinelUnwrapChains drives every internal sentinel through the
// facade wrap layer it crosses in production and asserts three properties
// of the resulting chain: errors.Is sees the public sentinel, errors.Is
// still sees the internal sentinel (the chain is not severed), and
// errors.As recovers a typed error planted at the very bottom.
func TestSentinelUnwrapChains(t *testing.T) {
	cases := []struct {
		name     string
		wrap     func(error) error
		internal error
		public   error
	}{
		{"encode/payload-size", wrapEncodeErr, core.ErrPayloadSize, ErrPayloadTooLarge},
		{"encode/frame-panic", wrapEncodeErr, engine.ErrFramePanic, ErrFramePanicked},
		{"encode/frame-timeout", wrapEncodeErr, engine.ErrFrameTimeout, ErrFrameDeadline},
		{"decode/short-waveform", wrapDecodeErr, wifi.ErrShortWaveform, ErrNoPreamble},
		{"decode/bad-signal", wrapDecodeErr, wifi.ErrBadSignal, ErrBadSignalField},
		{"decode/demod-failed", wrapDecodeErr, wifi.ErrDemodFailed, ErrDemodulation},
		{"decode/no-protected-channel", wrapDecodeErr, core.ErrNoProtectedChannel, ErrNoProtectedChannel},
		{"decode/extra-bit-layout", wrapDecodeErr, core.ErrExtraBitLayout, ErrExtraBitMismatch},
		{"decode/constraint-unsatisfied", wrapDecodeErr, core.ErrConstraintUnsatisfied, ErrExtraBitMismatch},
		{"decode/frame-panic", wrapDecodeErr, engine.ErrFramePanic, ErrFramePanicked},
		{"decode/frame-timeout", wrapDecodeErr, engine.ErrFrameTimeout, ErrFrameDeadline},
		{"engine/frame-panic", wrapEngineErr, engine.ErrFramePanic, ErrFramePanicked},
		{"engine/frame-timeout", wrapEngineErr, engine.ErrFrameTimeout, ErrFrameDeadline},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			detail := &chainDetail{site: tc.name}
			inner := fmt.Errorf("%w: %w", tc.internal, detail)
			wrapped := tc.wrap(inner)
			if !errors.Is(wrapped, tc.public) {
				t.Errorf("errors.Is(%v, public sentinel) = false", wrapped)
			}
			if !errors.Is(wrapped, tc.internal) {
				t.Errorf("wrap severed the internal chain: errors.Is(%v, internal) = false", wrapped)
			}
			var got *chainDetail
			if !errors.As(wrapped, &got) {
				t.Fatalf("errors.As failed to recover the planted detail from %v", wrapped)
			}
			if got.site != tc.name {
				t.Errorf("errors.As recovered detail from %q, want %q", got.site, tc.name)
			}
			for name, other := range publicSentinels {
				if other != tc.public && errors.Is(wrapped, other) {
					t.Errorf("chain also matches unrelated sentinel %s", name)
				}
			}
		})
	}
}

// TestConfigSentinelExclusive covers the two sentinels produced directly by
// Validate rather than a wrap layer, including that channel and non-channel
// config failures stay distinguishable.
func TestConfigSentinelExclusive(t *testing.T) {
	cases := []struct {
		name   string
		cfg    Config
		public error
	}{
		{"missing channel", Config{Channel: 9}, ErrInvalidChannel},
		{"bad modulation", Config{Modulation: 99, Channel: CH1}, ErrInvalidConfig},
		{"bad code rate", Config{CodeRate: 99, Channel: CH1}, ErrInvalidConfig},
		{"bad convention", Config{Convention: 7, Channel: CH1}, ErrInvalidConfig},
		{"bad scrambler seed", Config{ScramblerSeed: 200, Channel: CH1}, ErrInvalidConfig},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if !errors.Is(err, tc.public) {
				t.Fatalf("Validate() = %v, want %v", err, tc.public)
			}
			for name, other := range publicSentinels {
				if other != tc.public && errors.Is(err, other) {
					t.Errorf("config error also matches %s", name)
				}
			}
		})
	}
}

// TestWrapLayersPassThrough pins the contract that the wrap helpers leave
// nil and out-of-taxonomy errors untouched.
func TestWrapLayersPassThrough(t *testing.T) {
	for _, wrap := range []func(error) error{wrapEncodeErr, wrapDecodeErr, wrapEngineErr} {
		if got := wrap(nil); got != nil {
			t.Errorf("wrap(nil) = %v, want nil", got)
		}
		plain := errors.New("outside the taxonomy")
		if got := wrap(plain); got != plain {
			t.Errorf("wrap(plain) = %v, want identical error back", got)
		}
	}
}

// TestTransportWrapPreservesTaxonomy feeds an undecodable waveform through
// the message layer and asserts its extra wrap (MessageReceiver.Feed's
// "fragment decode" prefix) still exposes the public sentinel.
func TestTransportWrapPreservesTaxonomy(t *testing.T) {
	mr, err := NewMessageReceiver(Config{})
	if err != nil {
		t.Fatalf("NewMessageReceiver: %v", err)
	}
	if _, err := mr.Feed(make([]complex128, 50)); !errors.Is(err, ErrNoPreamble) {
		t.Fatalf("Feed(short waveform) = %v, want ErrNoPreamble through the transport wrap", err)
	}
}

func TestConfigWithDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.Modulation != QAM16 || c.CodeRate != Rate12 {
		t.Fatalf("defaults resolved to %v r=%v, want QAM-16 r=1/2", c.Modulation, c.CodeRate)
	}
	if c.ScramblerSeed != wifi.DefaultScramblerSeed {
		t.Fatalf("default seed %#x, want %#x", c.ScramblerSeed, wifi.DefaultScramblerSeed)
	}
	if c.Channel != 0 {
		t.Fatal("WithDefaults must not invent a channel")
	}
	// Set fields pass through untouched.
	c = Config{Modulation: QAM256, CodeRate: Rate56, Channel: CH3, ScramblerSeed: 11}.WithDefaults()
	if c.Modulation != QAM256 || c.CodeRate != Rate56 || c.Channel != CH3 || c.ScramblerSeed != 11 {
		t.Fatalf("WithDefaults altered set fields: %+v", c)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("zero config must validate (defaults apply): %v", err)
	}
	if err := (Config{Modulation: 99}).Validate(); err == nil {
		t.Fatal("invalid modulation accepted")
	}
	if err := (Config{CodeRate: 99}).Validate(); err == nil {
		t.Fatal("invalid code rate accepted")
	}
	if err := (Config{Convention: 7}).Validate(); err == nil {
		t.Fatal("invalid convention accepted")
	}
	if err := (Config{ScramblerSeed: 200}).Validate(); err == nil {
		t.Fatal("out-of-range seed accepted")
	}
	if err := (Config{Modulation: QAM64, CodeRate: Rate34, Channel: CH1}).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}
