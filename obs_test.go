package sledzig

import (
	"strings"
	"testing"

	"sledzig/internal/bits"
	"sledzig/internal/obs"
	"sledzig/internal/wifi"
)

// withMetrics installs a fresh registry for the test and removes it after.
func withMetrics(t *testing.T) *Metrics {
	t.Helper()
	reg := NewMetrics()
	SetDefaultMetrics(reg)
	t.Cleanup(func() { SetDefaultMetrics(nil) })
	return reg
}

// TestRoundTripStageCoverage runs one encode -> waveform -> decode round
// trip with observability on and asserts that every pipeline stage the
// instrumentation promises — encoder, Tx PHY, Rx PHY, decoder — recorded
// at least one call and one duration sample.
func TestRoundTripStageCoverage(t *testing.T) {
	reg := withMetrics(t)

	enc, err := NewEncoder(Config{Modulation: QAM64, CodeRate: Rate34, Channel: CH2})
	if err != nil {
		t.Fatal(err)
	}
	frame, err := enc.Encode([]byte("stage coverage payload"))
	if err != nil {
		t.Fatal(err)
	}
	wave, err := frame.Waveform()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := dec.Decode(wave)
	if err != nil {
		t.Fatal(err)
	}
	if res.Channel != CH2 || string(res.Payload) != "stage coverage payload" {
		t.Fatalf("round trip mismatch: channel %v payload %q", res.Channel, res.Payload)
	}

	// The SledZig encoder scrambles in core; run one standard WiFi frame
	// too so the plain Tx scramble stage is exercised as well.
	normal, err := wifi.Transmitter{Mode: wifi.Mode{Modulation: QAM64, CodeRate: Rate34}}.
		Frame([]byte("plain wifi frame"))
	if err != nil {
		t.Fatal(err)
	}
	normalWave, err := normal.Waveform()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dec.DecodeNormal(normalWave); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	stages := []string{
		// SledZig encoder.
		"core.encode.layout", "core.encode.scramble", "core.encode.solve", "core.encode.verify",
		// Tx PHY chain.
		"wifi.tx.scramble", "wifi.tx.encode", "wifi.tx.interleave", "wifi.tx.map", "wifi.tx.ifft",
		// Rx PHY chain (the mirror).
		"wifi.rx.sync", "wifi.rx.signal", "wifi.rx.equalize", "wifi.rx.demap",
		"wifi.rx.deinterleave", "wifi.rx.viterbi", "wifi.rx.descramble",
		// SledZig decoder.
		"core.decode.detect", "core.decode.strip",
	}
	for _, st := range stages {
		if calls := snap.Counters[st+".calls"]; calls == 0 {
			t.Errorf("stage %s: no calls recorded", st)
		}
		if h := snap.Histograms[st+".seconds"]; h.Count == 0 {
			t.Errorf("stage %s: no duration samples", st)
		}
	}
	for _, c := range []string{
		"core.encode.frames", "core.encode.payload_bytes",
		"core.decode.frames", "core.decode.payload_bytes",
		"wifi.tx.frames", "wifi.tx.symbols", "wifi.rx.frames",
	} {
		if snap.Counters[c] == 0 {
			t.Errorf("counter %s: still zero after round trip", c)
		}
	}
	// A clean round trip must not count failures.
	for name, v := range snap.Counters {
		if strings.Contains(name, ".fail") && v != 0 {
			t.Errorf("failure counter %s = %d on a clean round trip", name, v)
		}
	}
}

// TestDecodeFailureTaxonomy forces each receive/decode failure class
// through the public Decoder and asserts the matching counter (and only a
// matching event) moved.
func TestDecodeFailureTaxonomy(t *testing.T) {
	enc, err := NewEncoder(Config{Modulation: QAM64, CodeRate: Rate34, Channel: CH2})
	if err != nil {
		t.Fatal(err)
	}
	// A payload large enough that the frame spans many DATA symbols, so
	// the truncation vector genuinely cuts DATA off.
	frame, err := enc.Encode(make([]byte, 300))
	if err != nil {
		t.Fatal(err)
	}
	good, err := frame.Waveform()
	if err != nil {
		t.Fatal(err)
	}
	if len(good) <= wifi.PreambleLength+2*wifi.SymbolLength {
		t.Fatalf("test frame too short (%d samples) to truncate", len(good))
	}

	// A standard (non-SledZig) frame: decodes at the PHY but carries no
	// protected channel for the SledZig detector.
	normal, err := wifi.Transmitter{Mode: wifi.Mode{Modulation: QAM64, CodeRate: Rate34}}.
		Frame([]byte("plain wifi frame"))
	if err != nil {
		t.Fatal(err)
	}
	normalWave, err := normal.Waveform()
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name    string
		mangle  func() []complex128
		counter string
		event   string
	}{
		{
			name:    "short waveform",
			mangle:  func() []complex128 { return make([]complex128, 100) },
			counter: "wifi.rx.fail.short_waveform",
			event:   "decode_fail.short_waveform",
		},
		{
			name: "unusable channel estimate",
			mangle: func() []complex128 {
				// Long enough to clear the length check, but all-zero: the
				// LTS carries no energy to estimate a channel from.
				return make([]complex128, len(good))
			},
			counter: "wifi.rx.fail.channel_estimate",
			event:   "decode_fail.channel_estimate",
		},
		{
			name: "invalid SIGNAL field",
			mangle: func() []complex128 {
				// Splice in a hand-crafted SIGNAL symbol declaring a
				// zero-length PSDU: parity and rate code check out, so the
				// failure is unambiguously the SIGNAL content.
				field := make([]bits.Bit, 24)
				field[2], field[3] = 1, 1 // rate code 0b0011, length 0, parity 0
				coded, err := wifi.EncodeAndPuncture(field, wifi.Rate12)
				if err != nil {
					t.Fatal(err)
				}
				inter, err := wifi.Interleave(wifi.BPSK, coded)
				if err != nil {
					t.Fatal(err)
				}
				pts, err := wifi.MapAll(wifi.BPSK, inter)
				if err != nil {
					t.Fatal(err)
				}
				sym, err := wifi.AssembleSymbol(pts, 0)
				if err != nil {
					t.Fatal(err)
				}
				w := append([]complex128(nil), good...)
				copy(w[wifi.PreambleLength:wifi.PreambleLength+wifi.SymbolLength], sym)
				return w
			},
			counter: "wifi.rx.fail.signal",
			event:   "decode_fail.signal",
		},
		{
			name: "truncated DATA field",
			mangle: func() []complex128 {
				// Keep preamble + SIGNAL + one DATA symbol; SIGNAL declares
				// more symbols than remain.
				return append([]complex128(nil), good[:wifi.PreambleLength+2*wifi.SymbolLength]...)
			},
			counter: "wifi.rx.fail.truncated",
			event:   "decode_fail.truncated",
		},
		{
			name:    "no protected channel detected",
			mangle:  func() []complex128 { return normalWave },
			counter: "core.decode.fail.detect",
			event:   "decode_fail.detect",
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			reg := withMetrics(t)
			ring := NewEventRing(16)
			defer reg.Bus().Subscribe(ring)()

			dec, err := NewDecoder(Config{})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := dec.Decode(tc.mangle()); err == nil {
				t.Fatal("decode unexpectedly succeeded")
			}
			snap := reg.Snapshot()
			if got := snap.Counters[tc.counter]; got != 1 {
				t.Errorf("counter %s = %d, want 1", tc.counter, got)
			}
			// Exactly the matching failure class moved.
			for name, v := range snap.Counters {
				if strings.Contains(name, ".fail") && name != tc.counter && v != 0 {
					t.Errorf("unrelated failure counter %s = %d", name, v)
				}
			}
			// The event bus saw the same class.
			found := false
			for _, ev := range ring.Events() {
				if ev.Kind == tc.event {
					found = true
				}
			}
			if !found {
				t.Errorf("no %q event on the bus; got %+v", tc.event, ring.Events())
			}
		})
	}
}

// TestEncodeFailureCounted checks the encoder-side failure taxonomy: an
// oversized payload fails fast and is counted.
func TestEncodeFailureCounted(t *testing.T) {
	reg := withMetrics(t)

	enc, err := NewEncoder(Config{Modulation: QAM16, CodeRate: Rate12, Channel: CH1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := enc.Encode(make([]byte, 1<<20)); err == nil {
		t.Fatal("encode of oversized payload unexpectedly succeeded")
	}
	if got := reg.Snapshot().Counters["core.encode.fail"]; got == 0 {
		t.Error("core.encode.fail still zero after failed encode")
	}
}

// TestNoRegistryIsNoOp makes sure the library runs identically with
// observability off — the default state.
func TestNoRegistryIsNoOp(t *testing.T) {
	SetDefaultMetrics(nil)
	if DefaultMetrics() != nil {
		t.Fatal("default registry not nil")
	}
	enc, err := NewEncoder(Config{Modulation: QAM16, CodeRate: Rate12, Channel: CH3})
	if err != nil {
		t.Fatal(err)
	}
	frame, err := enc.Encode([]byte("no registry"))
	if err != nil {
		t.Fatal(err)
	}
	wave, err := frame.Waveform()
	if err != nil {
		t.Fatal(err)
	}
	dec, _ := NewDecoder(Config{})
	res, err := dec.Decode(wave)
	if err != nil {
		t.Fatal(err)
	}
	if res.Channel != CH3 || string(res.Payload) != "no registry" {
		t.Fatalf("round trip without registry: channel %v payload %q", res.Channel, res.Payload)
	}
	_ = obs.Default() // and the internal default agrees
}
