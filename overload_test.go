package sledzig

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"sledzig/internal/engine"
)

func overloadTestConfig() EngineConfig {
	return EngineConfig{
		Config:  Config{Modulation: QAM16, CodeRate: Rate12, Channel: CH2},
		Workers: 1,
	}
}

// TestFacadeOverloadTyped: an admission shed surfaces through the facade
// as ErrOverloaded, with the *Overload detail recoverable via errors.As.
func TestFacadeOverloadTyped(t *testing.T) {
	cfg := overloadTestConfig()
	cfg.MaxInflight = 1
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	defer eng.Close()

	release := make(chan struct{})
	entered := make(chan struct{}, 8)
	engine.SetFrameHook(func(engine.FrameHookInfo) {
		entered <- struct{}{}
		<-release
	})
	defer engine.SetFrameHook(nil)

	payload := []byte("facade overload probe payload")
	var wg sync.WaitGroup
	first := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		outs := eng.EncodeEach(context.Background(), [][]byte{payload})
		first <- outs[0].Err
	}()
	<-entered // one frame admitted and wedged

	outs := eng.EncodeEach(context.Background(), [][]byte{payload})
	if !errors.Is(outs[0].Err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", outs[0].Err)
	}
	var ov *Overload
	if !errors.As(outs[0].Err, &ov) {
		t.Fatalf("err %v does not carry *Overload detail", outs[0].Err)
	}
	if ov.Reason != engine.OverloadInflight {
		t.Fatalf("reason = %q, want %q", ov.Reason, engine.OverloadInflight)
	}
	if eng.Health() != EngineDegraded {
		t.Fatalf("health after shed = %s, want degraded", eng.Health())
	}

	close(release)
	wg.Wait()
	if err := <-first; err != nil {
		t.Fatalf("wedged frame: %v", err)
	}
}

// TestFacadeDrain: Drain through the facade reports clean on an idle
// engine, flips Health to closed, and post-drain submissions fail with
// ErrEngineClosed.
func TestFacadeDrain(t *testing.T) {
	eng, err := NewEngine(overloadTestConfig())
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	payload := []byte("facade drain payload")
	if outs := eng.EncodeEach(context.Background(), [][]byte{payload}); outs[0].Err != nil {
		t.Fatalf("warmup: %v", outs[0].Err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	rep := eng.Drain(ctx)
	if !rep.Clean || rep.Shed != 0 || rep.Abandoned != 0 {
		t.Fatalf("report = %+v, want clean", rep)
	}
	if eng.Health() != EngineClosed {
		t.Fatalf("health = %s, want closed", eng.Health())
	}
	outs := eng.EncodeEach(context.Background(), [][]byte{payload})
	if !errors.Is(outs[0].Err, ErrEngineClosed) {
		t.Fatalf("post-drain err = %v, want ErrEngineClosed", outs[0].Err)
	}
}

// TestFacadeDrainingSheds: a drain blocked on a wedged frame rejects new
// work with ErrDraining through the facade taxonomy.
func TestFacadeDrainingSheds(t *testing.T) {
	eng, err := NewEngine(overloadTestConfig())
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	release := make(chan struct{})
	entered := make(chan struct{}, 8)
	engine.SetFrameHook(func(engine.FrameHookInfo) {
		entered <- struct{}{}
		<-release
	})
	defer engine.SetFrameHook(nil)

	payload := []byte("facade draining payload")
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		eng.EncodeEach(context.Background(), [][]byte{payload})
	}()
	<-entered

	drainDone := make(chan DrainReport, 1)
	go func() { drainDone <- eng.Drain(context.Background()) }()
	waitDraining := time.After(5 * time.Second)
	for eng.Health() != EngineDraining {
		select {
		case <-waitDraining:
			t.Fatal("engine never entered draining")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	outs := eng.EncodeEach(context.Background(), [][]byte{payload})
	if !errors.Is(outs[0].Err, ErrDraining) {
		t.Fatalf("err while draining = %v, want ErrDraining", outs[0].Err)
	}

	close(release)
	rep := <-drainDone
	wg.Wait()
	if !rep.Clean {
		t.Fatalf("drain after release: %+v", rep)
	}
}

// TestFacadeBreakerCircuitOpen: a breaker trip surfaces as ErrCircuitOpen
// through the facade.
func TestFacadeBreakerCircuitOpen(t *testing.T) {
	cfg := overloadTestConfig()
	cfg.Breaker = BreakerConfig{Window: 4, MinSamples: 2, FailureRate: 0.5, Cooldown: time.Hour, Probes: 1}
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	defer eng.Close()

	engine.SetFrameHook(func(engine.FrameHookInfo) { panic("poisoned") })
	payload := []byte("facade breaker payload")
	outs := eng.EncodeEach(context.Background(), [][]byte{payload, payload, payload})
	engine.SetFrameHook(nil)
	for i, o := range outs {
		if !errors.Is(o.Err, ErrFramePanicked) && !errors.Is(o.Err, ErrCircuitOpen) {
			t.Fatalf("frame %d: err = %v, want panic or circuit-open taxonomy", i, o.Err)
		}
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		outs = eng.EncodeEach(context.Background(), [][]byte{payload})
		if errors.Is(outs[0].Err, ErrCircuitOpen) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("breaker never opened; last err = %v", outs[0].Err)
		}
		time.Sleep(time.Millisecond)
	}
	rep := eng.HealthReport()
	if rep.Breaker != "open" {
		t.Fatalf("report breaker = %q, want open", rep.Breaker)
	}
	if rep.Shed.CircuitOpen == 0 {
		t.Fatal("circuit-open sheds not tallied")
	}
}
